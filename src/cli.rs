//! The `metadis` command-line interface.
//!
//! Subcommands:
//!
//! * `disasm <elf>` — disassemble a stripped ELF and print a report or an
//!   annotated listing (`--listing`).
//! * `gen -o <path>` — emit a synthetic test executable (plus `.truth`
//!   sidecar listing ground-truth instruction offsets).
//! * `compare <elf>` — run every tool on the same binary and print summary
//!   statistics side by side.
//! * `cfg <elf>` — reconstruct and summarize the control-flow graph.
//! * `explain <elf> <offset|range>` — print the causal evidence chain
//!   behind one byte's (or range's) classification; `--json` emits the
//!   stable `metadis.explain.v1` record.
//! * `trace-diff <baseline.json> <new.json>` — compare two trace records
//!   against regression thresholds; exits non-zero on drift.
//! * `serve` — batch-service mode: disassemble ELF paths from stdin, a
//!   file, or a watched directory while exposing Prometheus `/metrics` and
//!   `/healthz` over HTTP (see [`crate::serve`]).
//! * `scrape <host:port>` — fetch and print a serve-mode endpoint.
//! * `top <host:port>` — live service console: poll the serve-mode
//!   `/debug/metrics/history` ring and render rates, windowed latency
//!   quantiles, and SLO burn rates as an auto-refreshing table.
//! * `forensics <host:port>` — snapshot a running instance's `/metrics`,
//!   metric history, and retained `metadis.request.v1` bundles into an
//!   on-disk support bundle for incident review.
//!
//! Every analysis command also accepts `--threads N` (worker threads for
//! the sharded pipeline phases and batch processing; the output is
//! bit-identical at any thread count) and the observability flags:
//! `--metrics` appends per-phase timing tables, the event-span tree, and
//! the global counter/histogram snapshot to the output, `--trace-json
//! <path>` writes a machine-readable trace record (schema
//! `metadis.trace.v6`, see the README "Observability" section), `--log
//! <path|->` / `--log-level <level>` stream structured `metadis.log.v2`
//! JSON lines to a file or stderr (each carrying the invocation's minted
//! `req_id`), and
//! `--provenance` collects the per-byte evidence ledger (`explain` turns
//! it on automatically), plus the robustness flags:
//! `--deadline-ms` / `--max-iterations` bound the pipeline's resource use
//! (budget hits are recorded as trace degradations) and `--strict` turns
//! any degradation into a hard `analysis-degraded` error.
//!
//! Failures carry an [`ErrorCategory`] mapped to a stable exit code
//! (`usage` = 2, `io` = 3, `parse` = 4, `analysis-degraded` = 5,
//! `overload` = 6).
//!
//! All output goes to the returned `String` so the CLI is fully testable.

use bingen::{GenConfig, OptProfile, Workload};
use disasm_baselines::Baseline;
use disasm_core::{cfg::Cfg, Config, Disassembler, Disassembly, Image, ListingOptions};
use std::fmt::Write as _;

/// What kind of failure a [`CliError`] represents. Each category maps to a
/// stable process exit code and a stable machine-readable name, so scripts
/// can branch on failures without scraping message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCategory {
    /// Bad command line: unknown command, missing argument, bad flag value.
    Usage,
    /// The OS said no: unreadable input, unwritable output.
    Io,
    /// The input file exists but is not a usable ELF.
    Parse,
    /// Analysis completed but hit a resource budget under `--strict`.
    Degraded,
    /// The service shed load under admission control: requests were
    /// refused (queue full, connection cap, deadline spent) rather than
    /// processed. Distinct from [`ErrorCategory::Degraded`], which means
    /// analysis *ran* but hit a budget.
    Overload,
}

impl ErrorCategory {
    /// Stable category name, printed as `error[{name}]: ...` by the binary.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCategory::Usage => "usage",
            ErrorCategory::Io => "io",
            ErrorCategory::Parse => "parse",
            ErrorCategory::Degraded => "analysis-degraded",
            ErrorCategory::Overload => "overload",
        }
    }

    /// Stable process exit code for this category.
    pub fn exit_code(self) -> i32 {
        match self {
            ErrorCategory::Usage => 2,
            ErrorCategory::Io => 3,
            ErrorCategory::Parse => 4,
            ErrorCategory::Degraded => 5,
            ErrorCategory::Overload => 6,
        }
    }
}

/// CLI error: a category (exit code + stable name) plus a message already
/// formatted for the user.
#[derive(Debug)]
pub struct CliError {
    /// Failure class; decides the exit code.
    pub category: ErrorCategory,
    /// User-facing message.
    pub message: String,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError {
        category: ErrorCategory::Usage,
        message: msg.into(),
    }
}

fn io_err(msg: impl Into<String>) -> CliError {
    CliError {
        category: ErrorCategory::Io,
        message: msg.into(),
    }
}

fn parse_err(msg: impl Into<String>) -> CliError {
    CliError {
        category: ErrorCategory::Parse,
        message: msg.into(),
    }
}

/// Usage text.
pub const USAGE: &str = "\
metadis — metadata-free disassembly of stripped x86-64 binaries

USAGE:
    metadis disasm <elf> [--listing] [--max-lines N] [--train N]
    metadis profile <elf> [--chrome-trace PATH] [--profile-summary]
                [--threads N]
    metadis gen -o <path> [--seed N] [--profile O0|O1|O2|O3]
                [--functions N] [--density F] [--adversarial]
    metadis compare <elf> [--train N]
    metadis cfg <elf> [--train N]
    metadis report <elf> [--train N]
    metadis diff <elf> [--train N]
    metadis score <elf> <truth-file> [--train N]
    metadis explain <elf> <offset|start..end> [--json] [--train N]
    metadis trace-diff <baseline.json> <new.json> [--max-wall-ratio F]
                [--max-count-ratio F] [--allow-degradations]
    metadis serve [--addr HOST:PORT] [--from FILE | --watch DIR]
                [--max-requests N] [--poll-ms N] [--max-inflight N]
                [--queue-depth N] [--client-deadline-ms N] [--drain-ms N]
                [--series-interval-ms N] [--series-window N]
                [--flight-capacity N]
    metadis scrape <host:port> [--path /metrics]
    metadis top <host:port> [--once] [--interval-ms N] [--count N]
                [--rows N]
    metadis forensics <host:port> [--id REQ_ID] [-o DIR]

OPTIONS:
    --listing       print a full annotated listing instead of the summary
    --max-lines N   cap listing length (default 200; 0 = unlimited)
    --train N       train the statistical model on N generated binaries
                    (default: self-train from the input binary)
    --seed N        generator seed (default 0)
    --profile P     generator profile (default O2)
    --functions N   generated function count (default 25)
    --density F     embedded-data fraction 0.0-0.5 (default 0.1)
    --adversarial   lace the generated binary with anti-disassembly junk

PARALLELISM (any analysis command; serve uses it for batch requests):
    --threads N        worker threads for the sharded pipeline phases
                       (superset decode, viability fixpoint, statistical
                       classification) and for batch processing; results
                       are bit-identical at any thread count (default: the
                       METADIS_THREADS env var if set, else the machine's
                       available parallelism; 1 = fully sequential)

OBSERVABILITY (any analysis command):
    --metrics          append per-phase timing tables, the event-span tree
                       and the global counter/histogram snapshot
    --trace-json PATH  write a machine-readable trace record
                       (schema metadis.trace.v6) to PATH
    --log DEST         stream structured metadis.log.v2 JSON lines to DEST
                       (a file path, or '-' for stderr); every line carries
                       the invocation's req_id for cross-artifact correlation
    --log-level L      keep records at level L and above: trace, debug,
                       info, warn, error (default info when --log is given)
    --provenance       collect the per-byte evidence ledger (the explain
                       command enables this automatically; off by default
                       because it costs memory proportional to decisions)

PROFILE (runs the pipeline with the flight recorder on):
    --chrome-trace PATH  write the per-thread timeline as Chrome
                         trace-event JSON (load in Perfetto or
                         chrome://tracing: one lane per worker thread
                         showing shard spans and merge barriers)
    --profile-summary    print the full critical-path / worker-utilization
                         / shard-duration report instead of the one-line
                         headline

SERVE:
    --addr HOST:PORT   bind address for /metrics, /healthz, /debug/timeline
                       and /debug/requests
                       (default 127.0.0.1:0 — an ephemeral port, logged at
                       startup as a metadis.log.v2 'listening' event)
    --from FILE        read ELF paths (one per line) from FILE instead of
                       stdin
    --watch DIR        poll DIR for new files and disassemble each once
    --max-requests N   stop after N processed requests
    --poll-ms N        watch-mode poll interval (default 200)
    --max-inflight N   connection cap: accepts beyond N concurrently held
                       client connections are shed with a structured 503
                       (default 256)
    --queue-depth N    admission-queue bound for HTTP /analyze requests;
                       a full queue sheds with 503 category=overload and
                       drives /healthz to 503 (default 64; 0 admits
                       nothing — maintenance mode)
    --client-deadline-ms N
                       per-client budget covering read + queue wait +
                       analysis + write; queue wait is subtracted from the
                       analysis deadline (default 10000; 0 = unlimited)
    --drain-ms N       graceful-shutdown drain bound for in-flight work
                       (default 2000)
    --series-interval-ms N
                       metric time-series sampler tick feeding
                       /debug/metrics/history and the SLO burn gauges
                       (default 1000; 0 disables sampling)
    --series-window N  samples the history ring retains; also scales the
                       SLO burn windows (default 300, minimum 2)
    --flight-capacity N
                       retained request records for /debug/requests; tail
                       retention keeps anomalous requests preferentially
                       (default 8, minimum 1)

SCRAPE:
    --path P           endpoint to fetch (default /metrics)

TOP (live console over /debug/metrics/history; rates and windowed
quantiles are derived client-side from adjacent samples):
    --once             print one frame and exit instead of refreshing
    --interval-ms N    refresh interval (default 1000)
    --count N          stop after N refreshes (default: run until ^C)
    --rows N           table rows to show, newest last (default 10)

FORENSICS (snapshot a running instance into an on-disk support bundle:
/metrics, /debug/metrics/history, the /debug/requests index, and one
metadis.request.v1 bundle per retained request):
    --id REQ_ID        fetch only the bundle for REQ_ID (16-hex request id)
    -o DIR             output directory (default metadis-forensics-<addr>)

EXPLAIN:
    --json             emit the metadis.explain.v1 JSON record instead of
                       the human-readable causal chain

TRACE-DIFF:
    --max-wall-ratio F   allowed new/old wall-time ratio (default 2.0)
    --max-count-ratio F  allowed new/old ratio for deterministic counts
                         (default 1.25)
    --allow-degradations accept new budget degradations instead of
                         flagging them as regressions

ROBUSTNESS (any analysis command):
    --deadline-ms N      abort analysis phases after N milliseconds of wall
                         clock; the run degrades to a partial (still fully
                         byte-classified) result instead of hanging
    --max-iterations N   cap the viability fixpoint and the correction
                         engine at N iterations/steps each
    --strict             exit with error category 'analysis-degraded' (code
                         5) if any resource budget was hit; the trace
                         record, if requested, is still written first.
                         Under serve: exit with category 'overload' (code
                         6) if any request was shed by admission control
";

/// What a subcommand produced: the user-facing text, plus every disassembly
/// it ran (name → result). The observability flags consume the latter.
struct CmdOutput {
    text: String,
    tools: Vec<(String, Disassembly)>,
}

impl CmdOutput {
    fn text_only(text: String) -> CmdOutput {
        CmdOutput {
            text,
            tools: Vec::new(),
        }
    }
}

/// Run the CLI with `args` (without the program name). Returns the text to
/// print on success.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message on bad arguments or
/// I/O / parse failures.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let r = run_inner(args);
    // a failing invocation lands in the structured stream too, while the
    // sink is still attached (the binary prints the human-facing line)
    if let Err(e) = &r {
        obs::log::error(
            "cli",
            "command failed",
            &[
                ("category", e.category.name().into()),
                ("error", e.message.as_str().into()),
            ],
        );
    }
    // per-invocation logger teardown, so in-process callers (tests, the
    // eval harness) don't leak a sink or level into the next invocation
    obs::log::clear_sink();
    obs::log::set_level(None);
    r
}

fn run_inner(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(|| err(USAGE))?;
    let rest: Vec<&String> = it.collect();
    let metrics = has_flag(&rest, "--metrics");
    let trace_json = flag_value(&rest, "--trace-json").map(str::to_string);
    if metrics || trace_json.is_some() {
        obs::set_enabled(true);
    }
    // allocation accounting is on for every CLI invocation; without the
    // `count-alloc` feature no allocator feeds it and the fields read 0
    obs::alloc::set_enabled(true);
    // each invocation is its own measurement window: zero the global
    // registry so repeated in-process runs (tests, the eval harness) don't
    // accumulate stale counters across invocations
    obs::global().reset();
    obs::log::reset();
    // one invocation = one request: mint a correlation id so every log
    // line, timeline event, and exemplar this run produces carries the
    // same req_id a served request would (explain/profile output included)
    let _req = obs::ctx::scope(obs::ctx::RequestId::mint());
    configure_logging(&rest)?;
    let mut out = match cmd.as_str() {
        "disasm" => cmd_disasm(&rest)?,
        "profile" => cmd_profile(&rest)?,
        "gen" => cmd_gen(&rest)?,
        "compare" => cmd_compare(&rest)?,
        "cfg" => cmd_cfg(&rest)?,
        "report" => cmd_report(&rest)?,
        "diff" => cmd_diff(&rest)?,
        "score" => cmd_score(&rest)?,
        "explain" => cmd_explain(&rest)?,
        "trace-diff" => cmd_trace_diff(&rest)?,
        "serve" => cmd_serve(&rest)?,
        "scrape" => cmd_scrape(&rest)?,
        "top" => cmd_top(&rest)?,
        "forensics" => cmd_forensics(&rest)?,
        "help" | "--help" | "-h" => CmdOutput::text_only(USAGE.to_string()),
        other => return Err(err(format!("unknown command '{other}'\n\n{USAGE}"))),
    };
    if metrics {
        append_metrics(&mut out);
    }
    if let Some(path) = trace_json {
        let json =
            disasm_core::trace::trace_report_json(cmd, &out.tools, &obs::global().snapshot());
        std::fs::write(&path, &json).map_err(|e| io_err(format!("cannot write '{path}': {e}")))?;
        let _ = writeln!(out.text, "trace record written to {path}");
    }
    // --strict turns degraded (budget-limited) analyses into a hard error —
    // after the trace record is on disk, so the evidence survives the abort.
    if has_flag(&rest, "--strict") {
        let degraded: u64 = out
            .tools
            .iter()
            .map(|(_, d)| d.trace.degradations.len() as u64)
            .sum();
        if degraded > 0 {
            return Err(CliError {
                category: ErrorCategory::Degraded,
                message: format!(
                    "analysis degraded: {degraded} budget(s) hit (rerun without --strict, \
                     or raise --deadline-ms / --max-iterations)"
                ),
            });
        }
    }
    Ok(out.text)
}

/// Apply `--log` / `--log-level`: install the sink and set the level. With
/// neither flag the logger stays off (records cost one atomic load).
fn configure_logging(rest: &[&String]) -> Result<(), CliError> {
    let dest = flag_value(rest, "--log");
    let level = match flag_value(rest, "--log-level") {
        Some(s) => Some(
            obs::log::Level::parse(s)
                .ok_or_else(|| err(format!("--log-level: unknown level '{s}'")))?,
        ),
        None => None,
    };
    if dest.is_none() && level.is_none() {
        return Ok(());
    }
    obs::log::set_level(Some(level.unwrap_or(obs::log::Level::Info)));
    match dest {
        Some("-") => obs::log::to_stderr(),
        Some(path) => {
            obs::log::to_file(path).map_err(|e| io_err(format!("cannot open log '{path}': {e}")))?
        }
        None => obs::log::clear_sink(), // level only: ring-buffer capture
    }
    Ok(())
}

/// Append each tool's per-phase table plus the global metric snapshot.
fn append_metrics(out: &mut CmdOutput) {
    for (name, d) in &out.tools {
        let _ = writeln!(
            out.text,
            "\n[{name}] phase timing — {} corrections, {} viability iterations, {} thread(s)",
            d.trace.corrections_total(),
            d.trace.viability_iterations,
            d.trace.threads.max(1)
        );
        if d.trace.alloc_bytes > 0 || d.trace.alloc_peak > 0 {
            let _ = writeln!(
                out.text,
                "[{name}] heap: {} bytes allocated, {} bytes peak",
                d.trace.alloc_bytes, d.trace.alloc_peak
            );
        }
        out.text.push_str(&d.trace.render_table());
        for g in &d.trace.degradations {
            let _ = writeln!(
                out.text,
                "  degraded: phase {} hit {} after {} unit(s)",
                g.phase,
                g.limit.name(),
                g.completed
            );
        }
        if !d.trace.spans.is_empty() {
            let _ = writeln!(out.text, "\n[{name}] span tree:");
            out.text.push_str(&obs::span::render_tree(&d.trace.spans));
        }
    }
    let _ = writeln!(out.text, "\nglobal metrics:");
    out.text.push_str(&obs::global().snapshot().render_table());
}

fn cmd_score(rest: &[&String]) -> Result<CmdOutput, CliError> {
    // two positionals: the ELF and the .truth sidecar written by `gen`
    let pos = positionals(rest);
    let path = *pos
        .first()
        .ok_or_else(|| err(format!("score: missing <elf>\n\n{USAGE}")))?;
    let truth_path = *pos
        .get(1)
        .ok_or_else(|| err(format!("score: missing <truth-file>\n\n{USAGE}")))?;
    let image = load_image(path)?;
    let truth_text = std::fs::read_to_string(truth_path)
        .map_err(|e| io_err(format!("cannot read '{truth_path}': {e}")))?;
    let truth: std::collections::BTreeSet<u32> = truth_text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            l.trim()
                .parse()
                .map_err(|_| parse_err(format!("bad offset '{l}' in {truth_path}")))
        })
        .collect::<Result<_, _>>()?;
    let cfg = build_config(rest)?;
    let d = Disassembler::new(cfg).disassemble(&image);
    let pred: std::collections::BTreeSet<u32> = d.inst_starts.iter().copied().collect();
    let tp = truth.intersection(&pred).count();
    let fn_ = truth.difference(&pred).count();
    let fp = pred.difference(&truth).count();
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fn_).max(1) as f64;
    let f1 = 2.0 * tp as f64 / (2 * tp + fp + fn_).max(1) as f64;
    let text = format!(
        "{path}: {} truth instructions\n  precision {precision:.4}  recall {recall:.4}  F1 {f1:.4}\n  TP {tp}  FP {fp} (may include padding)  FN {fn_}\n",
        truth.len()
    );
    Ok(CmdOutput {
        text,
        tools: vec![("metadis (ours)".to_string(), d)],
    })
}

fn cmd_diff(rest: &[&String]) -> Result<CmdOutput, CliError> {
    let path = positional(rest).ok_or_else(|| err(format!("diff: missing <elf>\n\n{USAGE}")))?;
    let cfg = build_config(rest)?;
    let image = load_image(path)?;
    let ours = Disassembler::new(cfg).disassemble(&image);
    let mut out = format!("{path}: metadis vs each baseline\n");
    let mut tools = Vec::new();
    for b in Baseline::ALL {
        let other = b.disassemble(&image);
        let d = disasm_core::diff(&ours, &other);
        let _ = writeln!(out, "  vs {:<15} {}", b.name(), d);
        tools.push((b.name().to_string(), other));
    }
    tools.push(("metadis (ours)".to_string(), ours));
    Ok(CmdOutput { text: out, tools })
}

fn cmd_report(rest: &[&String]) -> Result<CmdOutput, CliError> {
    let path = positional(rest).ok_or_else(|| err(format!("report: missing <elf>\n\n{USAGE}")))?;
    let cfg = build_config(rest)?;
    let image = load_image(path)?;
    let d = Disassembler::new(cfg).disassemble(&image);
    let r = disasm_core::Report::build(&image, &d);
    let mut out = format!("{path}:\n{r}\n\nlargest functions:\n");
    let mut by_size: Vec<_> = r.functions.iter().collect();
    by_size.sort_by_key(|f| std::cmp::Reverse(f.len()));
    for f in by_size.iter().take(10) {
        let _ = writeln!(
            out,
            "  {:#06x}..{:#06x}  {:5} bytes  {:4} insts  {:3} blocks",
            f.start,
            f.end,
            f.len(),
            f.instructions,
            f.blocks
        );
    }
    Ok(CmdOutput {
        text: out,
        tools: vec![("metadis (ours)".to_string(), d)],
    })
}

fn flag_value<'a>(rest: &'a [&String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a.as_str() == name)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
}

fn has_flag(rest: &[&String], name: &str) -> bool {
    rest.iter().any(|a| a.as_str() == name)
}

/// Arguments that are not flags (or flag values), in order.
fn positionals<'a>(rest: &'a [&String]) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut skip_next = false;
    for a in rest {
        if skip_next {
            skip_next = false;
            continue;
        }
        if let Some(stripped) = a.strip_prefix("--") {
            skip_next = !matches!(
                stripped,
                "listing"
                    | "adversarial"
                    | "metrics"
                    | "strict"
                    | "provenance"
                    | "json"
                    | "allow-degradations"
                    | "profile-summary"
                    | "once"
            );
            continue;
        }
        if a.as_str() == "-o" {
            skip_next = true;
            continue;
        }
        out.push(a.as_str());
    }
    out
}

fn positional<'a>(rest: &'a [&String]) -> Option<&'a str> {
    positionals(rest).first().copied()
}

fn load_image(path: &str) -> Result<Image, CliError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(format!("cannot read '{path}': {e}")))?;
    let elf =
        elfobj::Elf::parse(&bytes).map_err(|e| parse_err(format!("cannot parse '{path}': {e}")))?;
    Image::from_elf(&elf).ok_or_else(|| parse_err(format!("'{path}' has no executable section")))
}

fn build_config(rest: &[&String]) -> Result<Config, CliError> {
    let mut cfg = Config::default();
    if let Some(n) = flag_value(rest, "--train") {
        let n: usize = n.parse().map_err(|_| err("--train expects a number"))?;
        cfg.model = Some(disasm_eval::train_standard_model(n));
    }
    if let Some(ms) = flag_value(rest, "--deadline-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| err("--deadline-ms expects a number"))?;
        cfg.limits.deadline_ms = Some(ms);
    }
    if let Some(n) = flag_value(rest, "--max-iterations") {
        let n: u64 = n
            .parse()
            .map_err(|_| err("--max-iterations expects a number"))?;
        cfg.limits.max_viability_iterations = Some(n);
        cfg.limits.max_correction_steps = Some(n);
    }
    if let Some(n) = flag_value(rest, "--threads") {
        let n: usize = n
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| err("--threads expects a positive integer"))?;
        cfg.threads = n;
    }
    if has_flag(rest, "--provenance") {
        cfg.collect_provenance = true;
    }
    Ok(cfg)
}

fn cmd_disasm(rest: &[&String]) -> Result<CmdOutput, CliError> {
    let path = positional(rest).ok_or_else(|| err(format!("disasm: missing <elf>\n\n{USAGE}")))?;
    let cfg = build_config(rest)?;
    let image = load_image(path)?;
    let d = Disassembler::new(cfg).disassemble(&image);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: {} text bytes at {:#x}",
        image.text.len(),
        image.text_va
    );
    let _ = writeln!(out, "  {d}");
    if has_flag(rest, "--listing") {
        let max_lines = flag_value(rest, "--max-lines")
            .map(|v| v.parse().map_err(|_| err("--max-lines expects a number")))
            .transpose()?
            .unwrap_or(200);
        let opts = ListingOptions {
            max_lines,
            ..ListingOptions::default()
        };
        out.push('\n');
        out.push_str(&disasm_core::render_listing(&image, &d, &opts));
    } else {
        let _ = writeln!(
            out,
            "  functions at: {:?}{}",
            &d.func_starts[..d.func_starts.len().min(16)],
            if d.func_starts.len() > 16 { " ..." } else { "" }
        );
        for t in d.jump_tables.iter().take(8) {
            let _ = writeln!(
                out,
                "  jump table at {:#x}: {} x {}B entries",
                t.table_off,
                t.entries(),
                t.entry_size
            );
        }
    }
    Ok(CmdOutput {
        text: out,
        tools: vec![("metadis (ours)".to_string(), d)],
    })
}

fn cmd_profile(rest: &[&String]) -> Result<CmdOutput, CliError> {
    let path = positional(rest).ok_or_else(|| err(format!("profile: missing <elf>\n\n{USAGE}")))?;
    let cfg = build_config(rest)?;
    let image = load_image(path)?;
    // The flight recorder is the whole point of this command: turn it on
    // for the run, drain exactly this run's events, then restore the
    // previous state so in-process callers aren't left recording.
    let was_recording = obs::timeline::enabled();
    obs::timeline::set_enabled(true);
    let tl_mark = obs::timeline::mark();
    let d = Disassembler::new(cfg).disassemble(&image);
    let events = obs::timeline::take_since(tl_mark);
    obs::timeline::set_enabled(was_recording);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: profiled {} text bytes with {} thread(s) — {} timeline events",
        image.text.len(),
        d.trace.threads.max(1),
        events.len()
    );
    if let Some(trace_path) = flag_value(rest, "--chrome-trace") {
        let json = obs::chrome::write_chrome_trace(&events);
        std::fs::write(trace_path, &json)
            .map_err(|e| io_err(format!("cannot write '{trace_path}': {e}")))?;
        let _ = writeln!(
            out,
            "chrome trace written to {trace_path} (load in Perfetto or chrome://tracing)"
        );
    }
    if has_flag(rest, "--profile-summary") {
        out.push('\n');
        out.push_str(&obs::chrome::render_summary(&events));
    } else {
        let s = &d.trace.timeline;
        let _ = writeln!(
            out,
            "critical path {:.3} ms, worker utilization {}%, shard skew {}% \
             (use --profile-summary for the full report)",
            s.critical_path_ns as f64 / 1e6,
            s.worker_utilization,
            s.shard_skew
        );
    }
    Ok(CmdOutput {
        text: out,
        tools: vec![("metadis (ours)".to_string(), d)],
    })
}

fn cmd_gen(rest: &[&String]) -> Result<CmdOutput, CliError> {
    let out_path =
        flag_value(rest, "-o").ok_or_else(|| err(format!("gen: missing -o <path>\n\n{USAGE}")))?;
    let seed: u64 = flag_value(rest, "--seed")
        .map(|v| v.parse().map_err(|_| err("--seed expects a number")))
        .transpose()?
        .unwrap_or(0);
    let functions: usize = flag_value(rest, "--functions")
        .map(|v| v.parse().map_err(|_| err("--functions expects a number")))
        .transpose()?
        .unwrap_or(25);
    let density: f64 = flag_value(rest, "--density")
        .map(|v| v.parse().map_err(|_| err("--density expects a float")))
        .transpose()?
        .unwrap_or(0.1);
    let profile = match flag_value(rest, "--profile").unwrap_or("O2") {
        "O0" | "o0" => OptProfile::O0,
        "O1" | "o1" => OptProfile::O1,
        "O2" | "o2" => OptProfile::O2,
        "O3" | "o3" => OptProfile::O3,
        other => return Err(err(format!("unknown profile '{other}'"))),
    };
    if !(0.0..=0.5).contains(&density) {
        return Err(err("--density must be within 0.0..=0.5"));
    }
    let mut gen_cfg = GenConfig::new(seed, profile, functions, density);
    gen_cfg.adversarial = has_flag(rest, "--adversarial");
    let w = Workload::generate(&gen_cfg);
    let elf = w.to_elf().to_bytes();
    std::fs::write(out_path, &elf)
        .map_err(|e| io_err(format!("cannot write '{out_path}': {e}")))?;
    let truth_path = format!("{out_path}.truth");
    let mut truth = String::new();
    for &o in &w.truth.inst_starts {
        let _ = writeln!(truth, "{o}");
    }
    std::fs::write(&truth_path, truth)
        .map_err(|e| io_err(format!("cannot write '{truth_path}': {e}")))?;
    Ok(CmdOutput::text_only(format!(
        "wrote {out_path} ({} bytes, {} instructions, {:.1}% embedded data) and {truth_path}\n",
        elf.len(),
        w.truth.inst_starts.len(),
        w.actual_data_density() * 100.0
    )))
}

fn cmd_compare(rest: &[&String]) -> Result<CmdOutput, CliError> {
    let path = positional(rest).ok_or_else(|| err(format!("compare: missing <elf>\n\n{USAGE}")))?;
    let cfg = build_config(rest)?;
    let image = load_image(path)?;
    // per-tool warn counts need the logger at least tallying warns; leave a
    // user-chosen level alone (run() tears the level down per invocation)
    if obs::log::level().is_none() {
        obs::log::set_level(Some(obs::log::Level::Warn));
    }
    let mut t = disasm_eval::table::TextTable::new([
        "tool",
        "instructions",
        "code bytes",
        "data bytes",
        "functions",
        "tables",
        "wall ms",
        "MiB/s",
        "threads",
        "alloc_peak",
        "log_warn_count",
        "degraded_runs",
        "degradation_count",
    ]);
    let run_tool = |name: &str, f: &dyn Fn() -> Disassembly| -> (String, Disassembly, u64) {
        let warns_before = obs::log::warn_count();
        let d = f();
        (name.to_string(), d, obs::log::warn_count() - warns_before)
    };
    let mut runs: Vec<(String, Disassembly, u64)> = Baseline::ALL
        .iter()
        .map(|b| run_tool(b.name(), &|| b.disassemble(&image)))
        .collect();
    runs.push(run_tool("metadis (ours)", &|| {
        Disassembler::new(cfg.clone()).disassemble(&image)
    }));
    for (name, d, warns) in &runs {
        use disasm_core::ByteClass;
        t.row([
            name.clone(),
            d.inst_starts.len().to_string(),
            (d.count(ByteClass::InstStart) + d.count(ByteClass::InstBody)).to_string(),
            d.count(ByteClass::Data).to_string(),
            d.func_starts.len().to_string(),
            d.jump_tables.len().to_string(),
            format!("{:.3}", d.trace.total_wall_ns as f64 / 1e6),
            format!("{:.1}", d.trace.bytes_per_sec() / (1024.0 * 1024.0)),
            d.trace.threads.max(1).to_string(),
            d.trace.alloc_peak.to_string(),
            warns.to_string(),
            u64::from(d.trace.is_degraded()).to_string(),
            d.trace.degradations.len().to_string(),
        ]);
    }
    let tools: Vec<(String, Disassembly)> = runs.into_iter().map(|(n, d, _)| (n, d)).collect();
    let mut out = t.render();
    // where ours spends its time, phase by phase
    if let Some((name, d)) = tools.last() {
        let _ = writeln!(out, "\n[{name}] phase timing:");
        out.push_str(&d.trace.render_table());
    }
    Ok(CmdOutput { text: out, tools })
}

fn cmd_cfg(rest: &[&String]) -> Result<CmdOutput, CliError> {
    let path = positional(rest).ok_or_else(|| err(format!("cfg: missing <elf>\n\n{USAGE}")))?;
    let cfg = build_config(rest)?;
    let image = load_image(path)?;
    let mut d = Disassembler::new(cfg).disassemble(&image);
    let sw = obs::Stopwatch::start();
    let g = Cfg::build(&image, &d);
    d.trace.record(
        "cfg",
        sw.elapsed_ns(),
        image.text.len() as u64,
        g.len() as u64,
    );
    let mut out = String::new();
    let edges: usize = g.blocks().map(|b| b.succs.len()).sum();
    let _ = writeln!(
        out,
        "{path}: {} basic blocks, {} edges, {} call edges, {} functions",
        g.len(),
        edges,
        g.call_edges().len(),
        d.func_starts.len()
    );
    for b in g.blocks().take(12) {
        let _ = writeln!(
            out,
            "  block {:#06x}..{:#06x}: {} insts -> {:?}{}",
            b.start,
            b.end,
            b.insts.len(),
            b.succs,
            if b.returns { " (ret)" } else { "" }
        );
    }
    if g.len() > 12 {
        let _ = writeln!(out, "  ... ({} more blocks)", g.len() - 12);
    }
    Ok(CmdOutput {
        text: out,
        tools: vec![("metadis (ours)".to_string(), d)],
    })
}

/// Parse `0x`-prefixed hex or decimal; values at or above the text base are
/// treated as virtual addresses and rebased to text offsets.
fn parse_offset(spec: &str, image: &Image) -> Result<u32, CliError> {
    let v: u64 = match spec.strip_prefix("0x").or_else(|| spec.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => spec.parse(),
    }
    .map_err(|_| err(format!("bad offset '{spec}' (expected hex or decimal)")))?;
    let off = if v >= image.text_va {
        v - image.text_va
    } else {
        v
    };
    u32::try_from(off)
        .ok()
        .filter(|&o| (o as usize) < image.text.len())
        .ok_or_else(|| {
            err(format!(
                "offset '{spec}' is outside the text section (0..{:#x}, va {:#x}..{:#x})",
                image.text.len(),
                image.text_va,
                image.text_va + image.text.len() as u64
            ))
        })
}

/// Render one explanation as the human-readable causal chain.
fn render_explanation(e: &disasm_core::Explanation, image: &Image) -> String {
    use disasm_core::provenance::{class_name, NO_CLASS};
    let mut out = String::new();
    let _ = write!(
        out,
        "offset {:#06x} (va {:#x}): {}",
        e.offset,
        image.text_va + e.offset as u64,
        e.class_label()
    );
    match e.owner {
        Some(o) if o != e.offset => {
            let _ = writeln!(out, " (body of instruction at {o:#06x})");
        }
        _ => out.push('\n'),
    }
    let _ = writeln!(out, "  causal chain (most direct first):");
    for s in &e.chain {
        let indent = "  ".repeat(s.depth + 2);
        let _ = write!(
            out,
            "{indent}{}/{} {:#06x}..{:#06x}",
            s.phase, s.kind, s.start, s.end
        );
        if s.class != NO_CLASS {
            let _ = write!(out, " class={}", class_name(s.class));
        }
        if s.aux != NO_CLASS {
            let _ = write!(out, " displaced={}", class_name(s.aux));
        }
        if s.weight != 0.0 {
            let _ = write!(out, " weight={:.3}", s.weight);
        }
        if let Some(c) = s.cause {
            let _ = write!(out, " cause={c:#06x}");
        }
        out.push('\n');
    }
    if e.dropped > 0 {
        let _ = writeln!(
            out,
            "  ({} ledger event(s) dropped at the cap; chain may be incomplete)",
            e.dropped
        );
    }
    let _ = writeln!(out, "  => final label: {}", e.class_label());
    out
}

/// Write one explanation as a JSON object (an element of the
/// `metadis.explain.v1` `explanations` array).
fn write_explanation_json(w: &mut obs::json::JsonWriter, e: &disasm_core::Explanation) {
    use disasm_core::provenance::class_name;
    w.begin_obj();
    w.field_u64("offset", e.offset as u64);
    w.field_str("class", e.class_label());
    match e.owner {
        Some(o) => w.field_u64("owner", o as u64),
        None => {
            w.key("owner");
            w.null_val();
        }
    }
    w.field_u64("dropped", e.dropped);
    w.key("chain");
    w.begin_arr();
    for s in &e.chain {
        w.begin_obj();
        w.field_u64("seq", s.seq as u64);
        w.field_u64("depth", s.depth as u64);
        w.field_str("phase", s.phase);
        w.field_str("kind", s.kind);
        w.field_u64("start", s.start as u64);
        w.field_u64("end", s.end as u64);
        w.field_str("class", class_name(s.class));
        w.field_str("aux", class_name(s.aux));
        w.field_f64("weight", s.weight as f64);
        match s.cause {
            Some(c) => w.field_u64("cause", c as u64),
            None => {
                w.key("cause");
                w.null_val();
            }
        }
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
}

/// Cap on distinct decision units a range query will explain.
const EXPLAIN_RANGE_CAP: usize = 32;

fn cmd_explain(rest: &[&String]) -> Result<CmdOutput, CliError> {
    let pos = positionals(rest);
    let path = *pos
        .first()
        .ok_or_else(|| err(format!("explain: missing <elf>\n\n{USAGE}")))?;
    let spec = *pos
        .get(1)
        .ok_or_else(|| err(format!("explain: missing <offset|start..end>\n\n{USAGE}")))?;
    let mut cfg = build_config(rest)?;
    cfg.collect_provenance = true; // explain is pointless without the ledger
    let image = load_image(path)?;
    let (start, end) = match spec.split_once("..") {
        Some((a, b)) => {
            let s = parse_offset(a, &image)?;
            let e = parse_offset(b, &image)?;
            if s >= e {
                return Err(err(format!("empty range '{spec}'")));
            }
            (s, e)
        }
        None => {
            let s = parse_offset(spec, &image)?;
            (s, s + 1)
        }
    };
    let d = Disassembler::new(cfg).disassemble(&image);

    // one explanation per decision unit: consecutive bytes owned by the
    // same instruction (or covered by the same data explanation) collapse
    let mut explanations = Vec::new();
    let mut truncated = false;
    let mut last_owner: Option<u32> = None;
    let mut o = start;
    while o < end {
        let e = disasm_core::explain(&d, o)
            .ok_or_else(|| err(format!("offset {o:#x}: no provenance collected")))?;
        let unit = e.owner.unwrap_or(o);
        if last_owner != Some(unit) {
            if explanations.len() >= EXPLAIN_RANGE_CAP {
                truncated = true;
                break;
            }
            last_owner = Some(unit);
            explanations.push(e);
        }
        o += 1;
    }

    let text = if has_flag(rest, "--json") {
        let mut w = obs::json::JsonWriter::new();
        w.begin_obj();
        w.field_str("schema", "metadis.explain.v1");
        w.field_str("binary", path);
        w.field_u64("text_va", image.text_va);
        w.field_u64("start", start as u64);
        w.field_u64("end", end as u64);
        w.field_bool("truncated", truncated);
        w.key("explanations");
        w.begin_arr();
        for e in &explanations {
            write_explanation_json(&mut w, e);
        }
        w.end_arr();
        w.end_obj();
        let mut s = w.finish();
        s.push('\n');
        s
    } else {
        let mut s = String::new();
        for e in &explanations {
            s.push_str(&render_explanation(e, &image));
        }
        if truncated {
            let _ = writeln!(
                s,
                "(range truncated after {EXPLAIN_RANGE_CAP} decision units)"
            );
        }
        s
    };
    Ok(CmdOutput {
        text,
        tools: vec![("metadis (ours)".to_string(), d)],
    })
}

fn cmd_trace_diff(rest: &[&String]) -> Result<CmdOutput, CliError> {
    let pos = positionals(rest);
    let old_path = *pos
        .first()
        .ok_or_else(|| err(format!("trace-diff: missing <baseline.json>\n\n{USAGE}")))?;
    let new_path = *pos
        .get(1)
        .ok_or_else(|| err(format!("trace-diff: missing <new.json>\n\n{USAGE}")))?;
    let mut cfg = disasm_core::TraceDiffConfig::default();
    if let Some(v) = flag_value(rest, "--max-wall-ratio") {
        cfg.max_wall_ratio = v
            .parse()
            .map_err(|_| err("--max-wall-ratio expects a float"))?;
    }
    if let Some(v) = flag_value(rest, "--max-count-ratio") {
        cfg.max_count_ratio = v
            .parse()
            .map_err(|_| err("--max-count-ratio expects a float"))?;
    }
    cfg.allow_new_degradations = has_flag(rest, "--allow-degradations");

    let load = |p: &str| -> Result<obs::json::JsonValue, CliError> {
        let text =
            std::fs::read_to_string(p).map_err(|e| io_err(format!("cannot read '{p}': {e}")))?;
        obs::json::parse(&text).map_err(|e| parse_err(format!("cannot parse '{p}': {e}")))
    };
    let old = load(old_path)?;
    let new = load(new_path)?;
    let report = disasm_core::diff_trace_reports(&old, &new, &cfg)
        .map_err(|e| parse_err(format!("trace-diff: {e}")))?;
    let text = report.render_table();
    if report.is_regression() {
        return Err(CliError {
            category: ErrorCategory::Degraded,
            message: format!(
                "{text}trace regression: {} threshold violation(s) vs {old_path}",
                report.regressions.len()
            ),
        });
    }
    Ok(CmdOutput::text_only(text))
}

fn cmd_serve(rest: &[&String]) -> Result<CmdOutput, CliError> {
    // the bound (possibly ephemeral) port is announced via the logger; make
    // sure that announcement goes somewhere when the user didn't pick a sink
    if obs::log::level().is_none() {
        obs::log::set_level(Some(obs::log::Level::Info));
        obs::log::to_stderr();
    }
    let cfg = build_config(rest)?;
    let addr = flag_value(rest, "--addr").unwrap_or("127.0.0.1:0");
    let max_requests: u64 = match flag_value(rest, "--max-requests") {
        Some(v) => v
            .parse()
            .map_err(|_| err("--max-requests expects an integer"))?,
        None => u64::MAX,
    };
    let poll_ms: u64 = match flag_value(rest, "--poll-ms") {
        Some(v) => v.parse().map_err(|_| err("--poll-ms expects an integer"))?,
        None => 200,
    };
    let mut opts = crate::serve::ServeOptions::default();
    if let Some(v) = flag_value(rest, "--max-inflight") {
        opts.max_inflight = v
            .parse()
            .ok()
            .filter(|n| *n > 0)
            .ok_or_else(|| err("--max-inflight expects a positive integer"))?;
    }
    if let Some(v) = flag_value(rest, "--queue-depth") {
        opts.queue_depth = v
            .parse()
            .map_err(|_| err("--queue-depth expects an integer"))?;
    }
    if let Some(v) = flag_value(rest, "--client-deadline-ms") {
        opts.client_deadline_ms = v
            .parse()
            .map_err(|_| err("--client-deadline-ms expects an integer"))?;
    }
    if let Some(v) = flag_value(rest, "--drain-ms") {
        opts.drain_ms = v
            .parse()
            .map_err(|_| err("--drain-ms expects an integer"))?;
    }
    if let Some(v) = flag_value(rest, "--series-interval-ms") {
        opts.series_interval_ms = v
            .parse()
            .map_err(|_| err("--series-interval-ms expects an integer"))?;
    }
    if let Some(v) = flag_value(rest, "--series-window") {
        opts.series_window = v
            .parse()
            .ok()
            .filter(|n| *n >= 2)
            .ok_or_else(|| err("--series-window expects an integer >= 2"))?;
    }
    if let Some(v) = flag_value(rest, "--flight-capacity") {
        opts.flight_capacity = v
            .parse()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| err("--flight-capacity expects a positive integer"))?;
    }
    let server = crate::serve::Server::start_with(addr, opts, cfg.clone())
        .map_err(|e| io_err(format!("cannot bind '{addr}': {e}")))?;

    let mut processed: u64 = 0;
    let batch_cap = cfg.threads.max(1) as u64;
    // Drain paths from `lines`, fanning each full batch (one worker pool's
    // worth) out via `process_batch`. Per-request failures are service
    // events (logged + counted by the server), not fatal CLI errors: a
    // batch keeps going past bad inputs. Returns `false` once the
    // `--max-requests` budget is exhausted.
    let drain = |server: &crate::serve::Server,
                 lines: &mut dyn Iterator<Item = String>,
                 processed: &mut u64|
     -> bool {
        let mut pending: Vec<String> = Vec::new();
        while *processed + (pending.len() as u64) < max_requests {
            match lines.next() {
                Some(line) => {
                    let path = line.trim();
                    if path.is_empty() || path.starts_with('#') {
                        continue;
                    }
                    pending.push(path.to_string());
                    if (pending.len() as u64) >= batch_cap {
                        let _ = server.process_batch(&pending, &cfg);
                        *processed += pending.len() as u64;
                        pending.clear();
                    }
                }
                None => break,
            }
        }
        if !pending.is_empty() {
            let _ = server.process_batch(&pending, &cfg);
            *processed += pending.len() as u64;
        }
        *processed < max_requests
    };

    if let Some(list) = flag_value(rest, "--from") {
        let text = std::fs::read_to_string(list)
            .map_err(|e| io_err(format!("cannot read '{list}': {e}")))?;
        drain(
            &server,
            &mut text.lines().map(str::to_string),
            &mut processed,
        );
    } else if let Some(dir) = flag_value(rest, "--watch") {
        let mut seen = std::collections::BTreeSet::new();
        loop {
            let entries = std::fs::read_dir(dir)
                .map_err(|e| io_err(format!("cannot read dir '{dir}': {e}")))?;
            let mut fresh: Vec<String> = entries
                .filter_map(|e| e.ok())
                .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
                .filter_map(|e| e.path().to_str().map(str::to_string))
                .filter(|p| !seen.contains(p))
                .collect();
            fresh.sort();
            seen.extend(fresh.iter().cloned());
            if !drain(&server, &mut fresh.into_iter(), &mut processed) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(poll_ms));
        }
    } else {
        let stdin = std::io::stdin();
        let mut lines = stdin.lines().map_while(Result::ok);
        drain(&server, &mut lines, &mut processed);
    }

    let requests = server.requests();
    let errors = server.errors();
    let sheds = server.sheds();
    let text = format!(
        "served {requests} request(s), {errors} error(s), {sheds} shed\n{}",
        server.render_metrics()
    );
    server.shutdown();
    if has_flag(rest, "--strict") && sheds > 0 {
        return Err(CliError {
            category: ErrorCategory::Overload,
            message: format!("{text}{sheds} request(s) shed under overload (--strict)"),
        });
    }
    Ok(CmdOutput::text_only(text))
}

fn cmd_scrape(rest: &[&String]) -> Result<CmdOutput, CliError> {
    let addr =
        positional(rest).ok_or_else(|| err(format!("scrape: missing <host:port>\n\n{USAGE}")))?;
    let path = flag_value(rest, "--path").unwrap_or("/metrics");
    let body = crate::serve::scrape(addr, path)
        .map_err(|e| io_err(format!("scrape {addr}{path}: {e}")))?;
    Ok(CmdOutput::text_only(body))
}

/// Live service console: poll `/debug/metrics/history`, derive rates and
/// windowed quantiles from adjacent samples *client-side*, and render an
/// auto-refreshing table. Works against any running instance — the server
/// only ever ships cumulative snapshots.
fn cmd_top(rest: &[&String]) -> Result<CmdOutput, CliError> {
    let addr =
        positional(rest).ok_or_else(|| err(format!("top: missing <host:port>\n\n{USAGE}")))?;
    let addr = addr
        .strip_prefix("http://")
        .unwrap_or(addr)
        .trim_end_matches('/');
    let once = has_flag(rest, "--once");
    let interval_ms: u64 = match flag_value(rest, "--interval-ms") {
        Some(v) => v
            .parse()
            .map_err(|_| err("--interval-ms expects an integer"))?,
        None => 1000,
    };
    let count: u64 = match flag_value(rest, "--count") {
        Some(v) => v.parse().map_err(|_| err("--count expects an integer"))?,
        None => 0,
    };
    let rows: usize = match flag_value(rest, "--rows") {
        Some(v) => v
            .parse()
            .ok()
            .filter(|n| *n > 0)
            .ok_or_else(|| err("--rows expects a positive integer"))?,
        None => 10,
    };
    let refreshes = match (once, count) {
        (true, _) => 1,
        (false, 0) => u64::MAX,
        (false, n) => n,
    };
    let mut frame;
    let mut done = 0u64;
    loop {
        let body = crate::http::fetch(addr, "/debug/metrics/history")
            .map_err(|e| io_err(format!("top {addr}/debug/metrics/history: {e}")))?;
        frame = render_top(addr, &body, rows)?;
        done += 1;
        if done >= refreshes {
            break;
        }
        // Live mode: repaint in place (clear screen + home), then sleep
        // until the next poll. The final frame is returned as the command
        // output so `--once` behaves like any other one-shot command.
        use std::io::Write as _;
        let mut out = std::io::stdout().lock();
        let _ = write!(out, "\x1b[2J\x1b[H{frame}");
        let _ = out.flush();
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
    Ok(CmdOutput::text_only(frame))
}

/// Snapshot a running instance's forensic surface into an on-disk support
/// bundle: the `/metrics` exposition, the `/debug/metrics/history` series
/// ring, the `/debug/requests` retention index, and every retained
/// `metadis.request.v1` bundle (or just the one named by `--id`). The
/// result is a directory an operator can attach to an incident report —
/// correlation ids make the files cross-reference each other.
fn cmd_forensics(rest: &[&String]) -> Result<CmdOutput, CliError> {
    let addr = positional(rest)
        .ok_or_else(|| err(format!("forensics: missing <host:port>\n\n{USAGE}")))?;
    let addr = addr
        .strip_prefix("http://")
        .unwrap_or(addr)
        .trim_end_matches('/');
    let out_dir = match flag_value(rest, "-o") {
        Some(d) => std::path::PathBuf::from(d),
        None => std::path::PathBuf::from(format!(
            "metadis-forensics-{}",
            addr.replace([':', '/'], "-")
        )),
    };
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| io_err(format!("cannot create '{}': {e}", out_dir.display())))?;
    let fetch = |path: &str| -> Result<String, CliError> {
        crate::serve::scrape(addr, path).map_err(|e| io_err(format!("forensics {addr}{path}: {e}")))
    };
    let save = |name: &str, body: &str| -> Result<(), CliError> {
        let p = out_dir.join(name);
        std::fs::write(&p, body).map_err(|e| io_err(format!("cannot write '{}': {e}", p.display())))
    };
    let mut text = format!("forensics bundle from {addr} -> {}\n", out_dir.display());
    let metrics = fetch("/metrics")?;
    save("metrics.prom", &metrics)?;
    text.push_str("  metrics.prom\n");
    let history = fetch("/debug/metrics/history")?;
    save("history.json", &history)?;
    text.push_str("  history.json\n");
    let index = fetch("/debug/requests")?;
    save("requests.json", &index)?;
    text.push_str("  requests.json\n");
    // Which request bundles to pull: one (--id) or every retained id.
    // Every id — flag or remote index — must parse as a RequestId before
    // it is interpolated into a URL or an output filename: the index
    // comes from the network, and an unvalidated string like
    // `../../.bashrc` would otherwise name a file outside the bundle
    // directory. The canonical 16-hex rendering is used from here on.
    let mut invalid = 0usize;
    let ids: Vec<obs::ctx::RequestId> = match flag_value(rest, "--id") {
        Some(id) => vec![obs::ctx::RequestId::parse(id).ok_or_else(|| {
            err(format!(
                "forensics: --id '{id}' is not a request id (1-16 hex digits, nonzero)"
            ))
        })?],
        None => {
            let doc = obs::json::parse(&index)
                .map_err(|e| parse_err(format!("forensics: bad /debug/requests JSON: {e}")))?;
            doc.get("retained")
                .and_then(|v| v.as_arr())
                .map(|records| {
                    records
                        .iter()
                        .filter_map(|r| r.path("req_id").and_then(|v| v.as_str()))
                        .filter_map(|s| {
                            let rid = obs::ctx::RequestId::parse(s);
                            invalid += usize::from(rid.is_none());
                            rid
                        })
                        .collect()
                })
                .unwrap_or_default()
        }
    };
    if invalid > 0 {
        let _ = writeln!(
            text,
            "  skipped {invalid} index entr{} with invalid request ids",
            if invalid == 1 { "y" } else { "ies" }
        );
    }
    let mut saved = 0usize;
    for rid in &ids {
        let id = rid.to_string();
        // a record can race out of the buffer between the index fetch and
        // this one; a missing id is a note, not a failure
        match fetch(&format!("/debug/requests/{id}")) {
            Ok(bundle) => {
                save(&format!("request-{id}.json"), &bundle)?;
                let _ = writeln!(text, "  request-{id}.json");
                saved += 1;
            }
            Err(e) => {
                let _ = writeln!(text, "  request-{id}.json: skipped ({})", e.message);
            }
        }
    }
    let _ = writeln!(text, "saved {saved} request bundle(s)");
    Ok(CmdOutput::text_only(text))
}

/// Render one `top` frame from a `metadis.series.v1` body: an SLO
/// headline off the newest sample plus one table row per adjacent sample
/// pair (newest last), capped at `rows`.
fn render_top(addr: &str, body: &str, rows: usize) -> Result<String, CliError> {
    let doc = obs::json::parse(body)
        .map_err(|e| parse_err(format!("top: history endpoint answered invalid JSON: {e}")))?;
    let samples = obs::series::samples_from_json(&doc).ok_or_else(|| {
        parse_err("top: server did not answer a metadis.series.v1 document (old build?)")
    })?;
    let interval_ms = doc.get("interval_ms").and_then(|v| v.as_u64()).unwrap_or(0);
    let window = doc.get("window").and_then(|v| v.as_u64()).unwrap_or(0);
    let mut out = format!(
        "metadis top — {addr}  interval={interval_ms}ms  window={window}  samples={}\n",
        samples.len()
    );
    if samples.len() < 2 {
        out.push_str("warming up: need two samples to derive rates (is the sampler enabled?)\n");
        return Ok(out);
    }
    let newest = samples.last().expect("checked non-empty");
    if !newest.slo.is_empty() {
        out.push_str("slo:");
        for s in &newest.slo {
            out.push_str(&format!(
                " {} fast={} slow={}{}",
                s.objective,
                s.burn_fast,
                s.burn_slow,
                if s.breached { " [BREACHED]" } else { "" }
            ));
        }
        out.push('\n');
    }
    let mut t = obs::TextTable::new([
        "t(s)", "rps", "err/s", "shed/s", "queue", "inflight", "p50(ms)", "p99(ms)", "burn",
    ]);
    let lo = samples.len().saturating_sub(rows + 1);
    for pair in samples[lo..].windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        let lat = obs::series::window_summary(b, a, "latency_ns");
        let (p50, p99) = if lat.count == 0 {
            (0.0, 0.0)
        } else {
            (
                lat.quantile(0.5) as f64 / 1e6,
                lat.quantile(0.99) as f64 / 1e6,
            )
        };
        let burn = b.slo.iter().map(|s| s.burn_fast).fold(0.0, f64::max);
        t.row([
            format!("{:.1}", b.ts_ns as f64 / 1e9),
            format!("{:.1}", obs::series::rate_per_sec(b, a, "requests")),
            format!("{:.1}", obs::series::rate_per_sec(b, a, "errors")),
            format!("{:.1}", obs::series::rate_per_sec(b, a, "sheds")),
            b.gauge("queue_depth").to_string(),
            b.gauge("inflight").to_string(),
            format!("{p50:.2}"),
            format!("{p99:.2}"),
            format!("{burn}"),
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("metadis-cli-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&args(&["help"])).unwrap().contains("USAGE"));
        assert!(run(&args(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn top_rates_stay_non_negative_across_a_counter_reset() {
        // a server restart resets cumulative counters to zero mid-series;
        // deltas must saturate, never render as negative rates
        let h = obs::metrics::Histogram::new();
        for v in [1_000u64, 2_000, 4_000] {
            h.record(v);
        }
        let mut before = obs::series::Sample {
            ts_ns: 1_000_000_000,
            ..obs::series::Sample::default()
        };
        before.counters.insert("requests".into(), 500);
        before.counters.insert("errors".into(), 40);
        before.counters.insert("sheds".into(), 10);
        before.summaries.insert("latency_ns".into(), h.summary());
        // restarted: every cumulative value dropped below its predecessor
        let mut after = obs::series::Sample {
            ts_ns: 2_000_000_000,
            ..obs::series::Sample::default()
        };
        after.counters.insert("requests".into(), 3);
        after.counters.insert("errors".into(), 0);
        after.counters.insert("sheds".into(), 0);
        after.summaries.insert(
            "latency_ns".into(),
            obs::metrics::Histogram::new().summary(),
        );
        let body = obs::series::write_history_json(1000, 300, &[before, after]);
        let out = render_top("127.0.0.1:1", &body, 10).unwrap();
        // the data row derived across the reset carries only finite,
        // non-negative numbers (the separator rule is the only dashed line)
        let row = out
            .lines()
            .last()
            .unwrap_or_else(|| panic!("no table row: {out}"));
        for cell in row.split_whitespace().skip(1) {
            let v: f64 = cell
                .parse()
                .unwrap_or_else(|_| panic!("non-numeric cell '{cell}': {out}"));
            assert!(v >= 0.0 && v.is_finite(), "negative rate '{cell}': {out}");
        }
    }

    #[test]
    fn gen_then_disasm_then_compare_then_cfg() {
        let dir = tmpdir();
        let elf = dir.join("t.elf");
        let elf_s = elf.to_str().unwrap();
        let msg = run(&args(&[
            "gen",
            "-o",
            elf_s,
            "--seed",
            "9",
            "--functions",
            "10",
            "--density",
            "0.1",
        ]))
        .unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        assert!(elf.exists());
        assert!(dir.join("t.elf.truth").exists());

        let report = run(&args(&["disasm", elf_s])).unwrap();
        assert!(report.contains("instructions"), "{report}");

        let listing = run(&args(&["disasm", elf_s, "--listing", "--max-lines", "40"])).unwrap();
        assert!(
            listing.contains("push") || listing.contains("mov"),
            "{listing}"
        );

        let cmp = run(&args(&["compare", elf_s])).unwrap();
        assert!(cmp.contains("linear-sweep"), "{cmp}");
        assert!(cmp.contains("metadis (ours)"), "{cmp}");

        let cfg = run(&args(&["cfg", elf_s])).unwrap();
        assert!(cfg.contains("basic blocks"), "{cfg}");

        let rep = run(&args(&["report", elf_s])).unwrap();
        assert!(rep.contains("largest functions"), "{rep}");
        assert!(rep.contains("jump tables"), "{rep}");

        let df = run(&args(&["diff", elf_s])).unwrap();
        assert!(df.contains("vs linear-sweep"), "{df}");
        assert!(df.contains("agreement"), "{df}");

        let truth_path = format!("{elf_s}.truth");
        let sc = run(&args(&["score", elf_s, &truth_path])).unwrap();
        assert!(sc.contains("precision"), "{sc}");
        // the self-trained pipeline should still be highly accurate
        let recall: f64 = sc
            .split("recall ")
            .nth(1)
            .and_then(|v| v.split_whitespace().next())
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(recall > 0.9, "{sc}");
    }

    #[test]
    fn observability_flags() {
        let dir = tmpdir();
        let elf = dir.join("obs.elf");
        let elf_s = elf.to_str().unwrap();
        run(&args(&[
            "gen",
            "-o",
            elf_s,
            "--seed",
            "3",
            "--functions",
            "8",
        ]))
        .unwrap();

        // --metrics appends the phase table, the span tree and the snapshot
        let out = run(&args(&["disasm", elf_s, "--metrics"])).unwrap();
        assert!(out.contains("phase timing"), "{out}");
        assert!(out.contains("superset"), "{out}");
        assert!(out.contains("viability"), "{out}");
        assert!(out.contains("span tree"), "{out}");
        assert!(out.contains("pipeline"), "{out}");
        assert!(out.contains("global metrics"), "{out}");
        assert!(out.contains("pipeline.runs"), "{out}");

        // --trace-json writes a metadis.trace.v6 record
        let json_path = dir.join("trace.json");
        let json_s = json_path.to_str().unwrap();
        let out = run(&args(&["disasm", elf_s, "--trace-json", json_s])).unwrap();
        assert!(out.contains("trace record written"), "{out}");
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(
            json.starts_with(r#"{"schema":"metadis.trace.v6","command":"disasm""#),
            "{json}"
        );
        for key in [
            r#""tool":"metadis (ours)""#,
            r#""viability_iterations""#,
            r#""corrections_by_priority""#,
            r#""degradations""#,
            r#""bytes_per_sec""#,
            r#""phases":[{"name":"superset""#,
            r#""metrics":{"counters""#,
            r#""alloc_bytes""#,
            r#""alloc_peak""#,
            r#""shards""#,
            r#""merge_wall_ns""#,
            r#""threads""#,
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }

        // compare always shows per-tool timing plus ours' phase table, and
        // surfaces degradation status per tool
        let cmp = run(&args(&["compare", elf_s])).unwrap();
        assert!(cmp.contains("wall ms"), "{cmp}");
        assert!(cmp.contains("MiB/s"), "{cmp}");
        assert!(cmp.contains("phase timing"), "{cmp}");
        assert!(cmp.contains("degraded_runs"), "{cmp}");
        assert!(cmp.contains("degradation_count"), "{cmp}");
        assert!(cmp.contains("alloc_peak"), "{cmp}");
        assert!(cmp.contains("log_warn_count"), "{cmp}");
        assert!(cmp.contains("threads"), "{cmp}");
        assert!(cmp.contains("merge ms"), "{cmp}");

        // cfg records its own phase in the trace record
        let cfg_json = dir.join("cfg-trace.json");
        let cfg_json_s = cfg_json.to_str().unwrap();
        run(&args(&["cfg", elf_s, "--trace-json", cfg_json_s])).unwrap();
        let json = std::fs::read_to_string(&cfg_json).unwrap();
        assert!(json.contains(r#""command":"cfg""#), "{json}");
        assert!(json.contains(r#""name":"cfg""#), "{json}");

        // compare --trace-json carries one entry per tool
        let cmp_json = dir.join("cmp-trace.json");
        let cmp_json_s = cmp_json.to_str().unwrap();
        run(&args(&["compare", elf_s, "--trace-json", cmp_json_s])).unwrap();
        let json = std::fs::read_to_string(&cmp_json).unwrap();
        for tool in [
            r#""tool":"linear-sweep""#,
            r#""tool":"recursive""#,
            r#""tool":"metadis (ours)""#,
        ] {
            assert!(json.contains(tool), "missing {tool} in {json}");
        }
    }

    #[test]
    fn explain_prints_causal_chain() {
        let dir = tmpdir();
        let elf = dir.join("explain.elf");
        let elf_s = elf.to_str().unwrap();
        run(&args(&[
            "gen",
            "-o",
            elf_s,
            "--seed",
            "11",
            "--functions",
            "6",
        ]))
        .unwrap();

        // a single offset: human-readable chain ending in the final label
        let out = run(&args(&["explain", elf_s, "0x0"])).unwrap();
        assert!(out.contains("offset 0x0000"), "{out}");
        assert!(out.contains("causal chain"), "{out}");
        assert!(out.contains("=> final label:"), "{out}");
        // at least one evidence record must mention a pipeline phase
        assert!(
            out.contains("superset/") || out.contains("anchor/") || out.contains("default/"),
            "{out}"
        );

        // a range query collapses to decision units and stays bounded
        let out = run(&args(&["explain", elf_s, "0x0..0x10"])).unwrap();
        assert!(out.matches("=> final label:").count() >= 1, "{out}");

        // --json emits a stable metadis.explain.v1 record
        let out = run(&args(&["explain", elf_s, "0x0", "--json"])).unwrap();
        assert!(
            out.starts_with(r#"{"schema":"metadis.explain.v1""#),
            "{out}"
        );
        for key in [
            r#""binary":"#,
            r#""text_va":"#,
            r#""truncated":false"#,
            r#""explanations":[{"offset":0"#,
            r#""chain":[{"seq":"#,
            r#""phase":"#,
            r#""kind":"#,
            r#""weight":"#,
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }

        // a VA inside .text is rebased to a text offset
        let out = run(&args(&["explain", elf_s, "0x401000"])).unwrap();
        assert!(out.contains("offset 0x0000"), "{out}");

        // out-of-range offsets are usage errors, not panics
        let e = run(&args(&["explain", elf_s, "0xffffff"])).unwrap_err();
        assert_eq!(e.category, ErrorCategory::Usage, "{e}");
        let e = run(&args(&["explain", elf_s, "12..4"])).unwrap_err();
        assert_eq!(e.category, ErrorCategory::Usage, "{e}");
    }

    #[test]
    fn trace_diff_detects_regressions() {
        let dir = tmpdir();
        let elf = dir.join("td.elf");
        let elf_s = elf.to_str().unwrap();
        run(&args(&[
            "gen",
            "-o",
            elf_s,
            "--seed",
            "21",
            "--functions",
            "6",
        ]))
        .unwrap();
        let base = dir.join("td-base.json");
        let base_s = base.to_str().unwrap();
        run(&args(&["disasm", elf_s, "--trace-json", base_s])).unwrap();

        // identical traces: OK, exit success
        let out = run(&args(&["trace-diff", base_s, base_s])).unwrap();
        assert!(out.contains("trace-diff: OK"), "{out}");

        // a trace that lost a tool is a regression => Degraded category
        let doctored = dir.join("td-doctored.json");
        let body = std::fs::read_to_string(&base).unwrap();
        std::fs::write(
            &doctored,
            body.replace(r#""tool":"metadis (ours)""#, r#""tool":"renamed""#),
        )
        .unwrap();
        let e = run(&args(&["trace-diff", base_s, doctored.to_str().unwrap()])).unwrap_err();
        assert_eq!(e.category, ErrorCategory::Degraded, "{e}");
        assert!(e.message.contains("trace-diff: REGRESSION"), "{e}");
        assert!(e.message.contains("trace regression"), "{e}");

        // unreadable / non-trace inputs are IO / parse errors
        let e = run(&args(&["trace-diff", "/nonexistent.json", base_s])).unwrap_err();
        assert_eq!(e.category, ErrorCategory::Io, "{e}");
        let junk = dir.join("junk.json");
        std::fs::write(&junk, "{not json").unwrap();
        let e = run(&args(&["trace-diff", base_s, junk.to_str().unwrap()])).unwrap_err();
        assert_eq!(e.category, ErrorCategory::Parse, "{e}");
    }

    #[test]
    fn provenance_flag_enables_ledger_in_disasm() {
        let dir = tmpdir();
        let elf = dir.join("prov.elf");
        let elf_s = elf.to_str().unwrap();
        run(&args(&[
            "gen",
            "-o",
            elf_s,
            "--seed",
            "5",
            "--functions",
            "4",
        ]))
        .unwrap();
        // --provenance is accepted and the run still reports normally
        let out = run(&args(&["disasm", elf_s, "--provenance"])).unwrap();
        assert!(out.contains("instructions"), "{out}");
    }

    #[test]
    fn gen_validates_arguments() {
        let dir = tmpdir();
        let elf = dir.join("bad.elf");
        assert!(run(&args(&["gen"])).is_err());
        assert!(run(&args(&[
            "gen",
            "-o",
            elf.to_str().unwrap(),
            "--density",
            "0.9"
        ]))
        .is_err());
        assert!(run(&args(&[
            "gen",
            "-o",
            elf.to_str().unwrap(),
            "--profile",
            "O9"
        ]))
        .is_err());
    }

    #[test]
    fn disasm_rejects_garbage_input() {
        let dir = tmpdir();
        let junk = dir.join("junk.bin");
        std::fs::write(&junk, b"not an elf").unwrap();
        let e = run(&args(&["disasm", junk.to_str().unwrap()])).unwrap_err();
        assert!(e.message.contains("cannot parse"), "{e}");
        assert!(run(&args(&["disasm", "/nonexistent/x.elf"])).is_err());
    }

    #[test]
    fn error_categories_map_to_stable_exit_codes() {
        let dir = tmpdir();

        // usage: unknown command, missing args, bad flag value
        for bad in [
            args(&["frobnicate"]),
            args(&["disasm"]),
            args(&["disasm", "x.elf", "--max-iterations", "lots"]),
            args(&["disasm", "x.elf", "--deadline-ms", "soon"]),
            args(&["disasm", "x.elf", "--threads", "0"]),
            args(&["disasm", "x.elf", "--threads", "many"]),
        ] {
            let e = run(&bad).unwrap_err();
            assert_eq!(e.category, ErrorCategory::Usage, "{bad:?}: {e}");
        }

        // io: unreadable input
        let e = run(&args(&["disasm", "/nonexistent/x.elf"])).unwrap_err();
        assert_eq!(e.category, ErrorCategory::Io, "{e}");

        // parse: file exists but is not an ELF
        let junk = dir.join("cat.bin");
        std::fs::write(&junk, b"\x7fELF but not really").unwrap();
        let e = run(&args(&["disasm", junk.to_str().unwrap()])).unwrap_err();
        assert_eq!(e.category, ErrorCategory::Parse, "{e}");

        // the code/name mapping is a stable contract
        assert_eq!(ErrorCategory::Usage.exit_code(), 2);
        assert_eq!(ErrorCategory::Io.exit_code(), 3);
        assert_eq!(ErrorCategory::Parse.exit_code(), 4);
        assert_eq!(ErrorCategory::Degraded.exit_code(), 5);
        assert_eq!(ErrorCategory::Degraded.name(), "analysis-degraded");
        assert_eq!(ErrorCategory::Overload.exit_code(), 6);
        assert_eq!(ErrorCategory::Overload.name(), "overload");
    }

    #[test]
    fn robustness_flags_degrade_and_strict_escalates() {
        let dir = tmpdir();
        let elf = dir.join("robust.elf");
        let elf_s = elf.to_str().unwrap();
        run(&args(&[
            "gen",
            "-o",
            elf_s,
            "--seed",
            "11",
            "--functions",
            "8",
        ]))
        .unwrap();

        // a starvation-level iteration budget degrades but still succeeds,
        // and --metrics reports which budget was hit
        let out = run(&args(&[
            "disasm",
            elf_s,
            "--max-iterations",
            "1",
            "--metrics",
        ]))
        .unwrap();
        assert!(out.contains("degraded: phase"), "{out}");

        // the same run under --strict becomes an analysis-degraded error...
        let json_path = dir.join("strict-trace.json");
        let json_s = json_path.to_str().unwrap();
        let e = run(&args(&[
            "disasm",
            elf_s,
            "--max-iterations",
            "1",
            "--strict",
            "--trace-json",
            json_s,
        ]))
        .unwrap_err();
        assert_eq!(e.category, ErrorCategory::Degraded, "{e}");
        // ...but the trace record was still written, with the degradations
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains(r#""schema":"metadis.trace.v6""#), "{json}");
        assert!(json.contains(r#""limit":"correction_steps""#), "{json}");

        // an unconstrained strict run passes
        let out = run(&args(&["disasm", elf_s, "--strict"])).unwrap();
        assert!(out.contains("instructions"), "{out}");
    }

    #[test]
    fn log_flags_stream_structured_lines() {
        let dir = tmpdir();
        let elf = dir.join("log.elf");
        let elf_s = elf.to_str().unwrap();
        run(&args(&[
            "gen",
            "-o",
            elf_s,
            "--seed",
            "5",
            "--functions",
            "8",
        ]))
        .unwrap();

        // --log FILE streams metadis.log.v2 JSON lines covering the run
        let log = dir.join("run.log");
        let log_s = log.to_str().unwrap();
        run(&args(&["disasm", elf_s, "--log", log_s])).unwrap();
        let text = std::fs::read_to_string(&log).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 8, "expected a line per phase, got:\n{text}");
        for line in &lines {
            assert!(
                line.starts_with(r#"{"schema":"metadis.log.v2","ts_ns":"#),
                "{line}"
            );
            assert!(line.ends_with('}'), "{line}");
        }
        // one invocation = one request id: every line carries the same one
        assert!(
            text.contains(r#""req_id":""#),
            "expected req_id on log lines:\n{text}"
        );
        for needle in [
            r#""msg":"run begin""#,
            r#""phase":"superset""#,
            r#""phase":"viability""#,
            r#""msg":"run done""#,
            r#""level":"info""#,
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }

        // --log-level warn filters the info-level phase chatter out
        let quiet = dir.join("quiet.log");
        let quiet_s = quiet.to_str().unwrap();
        run(&args(&[
            "disasm",
            elf_s,
            "--log",
            quiet_s,
            "--log-level",
            "warn",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&quiet).unwrap();
        assert!(!text.contains(r#""level":"info""#), "{text}");

        // a budget-limited run emits warn-level budget-hit records
        let warn = dir.join("warn.log");
        let warn_s = warn.to_str().unwrap();
        run(&args(&[
            "disasm",
            elf_s,
            "--max-iterations",
            "1",
            "--log",
            warn_s,
            "--log-level",
            "warn",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&warn).unwrap();
        assert!(text.contains(r#""msg":"budget hit""#), "{text}");
        assert!(text.contains(r#""limit":"#), "{text}");

        // an unknown level is a usage error
        let e = run(&args(&["disasm", elf_s, "--log-level", "loud"])).unwrap_err();
        assert_eq!(e.category, ErrorCategory::Usage, "{e}");
    }

    #[test]
    fn scrape_without_server_is_io_error() {
        // a port nobody listens on: bind-then-drop reserves a dead address
        let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = dead.local_addr().unwrap().to_string();
        drop(dead);
        let e = run(&args(&["scrape", &addr])).unwrap_err();
        assert_eq!(e.category, ErrorCategory::Io, "{e}");
    }

    #[test]
    fn forensics_validates_request_ids_from_flag_and_remote_index() {
        use std::io::{Read as _, Write as _};
        // A hostile/compromised server whose retention index names a
        // path-traversal "id". The CLI must validate every id before
        // interpolating it into a fetch URL or an output filename.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // exactly 7 requests cross the wire: 4 for the clean run
        // (metrics, history, index, one valid bundle) and 3 for the
        // --id run, which fails validation after the index fetch
        let server = std::thread::spawn(move || {
            for _ in 0..7 {
                let Ok((mut s, _)) = listener.accept() else {
                    return;
                };
                let mut buf = Vec::new();
                let mut chunk = [0u8; 1024];
                while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
                    match s.read(&mut chunk) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    }
                }
                let req = String::from_utf8_lossy(&buf).into_owned();
                let target = req.split_whitespace().nth(1).unwrap_or("").to_string();
                let body = match target.as_str() {
                    "/debug/requests" => {
                        r#"{"retained":[{"req_id":"../../evil"},{"req_id":"000000000000dead"}]}"#
                    }
                    t if t.starts_with("/debug/requests/") => r#"{"schema":"metadis.request.v1"}"#,
                    _ => "{}",
                };
                let _ = write!(
                    s,
                    "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                );
            }
        });

        let dir = tmpdir().join("forensics-hostile");
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().unwrap().to_string();
        let out = run(&args(&["forensics", &addr, "-o", &dir_s])).unwrap();
        // the traversal entry is reported, not fetched or written...
        assert!(
            out.contains("skipped 1 index entry with invalid request ids"),
            "{out}"
        );
        assert!(out.contains("request-000000000000dead.json"), "{out}");
        assert!(out.contains("saved 1 request bundle(s)"), "{out}");
        // ...and the bundle directory holds exactly the expected files,
        // all inside the directory
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(
            names,
            [
                "history.json",
                "metrics.prom",
                "request-000000000000dead.json",
                "requests.json"
            ]
        );

        // an invalid --id is a usage error before any fetch loop runs
        let e = run(&args(&[
            "forensics",
            &addr,
            "--id",
            "../../etc/passwd",
            "-o",
            &dir_s,
        ]))
        .unwrap_err();
        assert!(e.to_string().contains("not a request id"), "{e}");
        server.join().unwrap();
    }
}
