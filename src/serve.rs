//! High-concurrency service mode: a nonblocking event loop with admission
//! control, load shedding, and the batch-worker analysis engine behind it.
//!
//! [`Server`] binds a `std::net::TcpListener` in nonblocking mode and runs
//! a readiness-polling **reactor** on one background thread: every client
//! socket is `set_nonblocking`, reads and writes happen incrementally
//! through the bounded [`crate::http`] framing layer, and no connection can
//! ever stall another — a slowloris client dribbling one byte per 100 ms
//! holds exactly one connection slot while `/healthz` keeps answering. The
//! reactor holds hundreds of concurrent clients; capacity is explicit:
//!
//! * **Connection cap** ([`ServeOptions::max_inflight`]) — accepts beyond
//!   the cap are answered with a structured `503` and closed.
//! * **Admission queue** ([`ServeOptions::queue_depth`]) — complete
//!   `/analyze` requests enter a bounded queue; when it is full the request
//!   is *shed*: a `503` JSON body carrying `"category":"overload"`, an
//!   `obs::log` warn event, and a `metadis_requests_shed_total` increment —
//!   never a stall, never a crash.
//! * **Per-client deadline** ([`ServeOptions::client_deadline_ms`]) — one
//!   [`Deadline`] covers read + queue wait + analysis + write. Whatever
//!   budget the queue wait consumed is subtracted before analysis starts
//!   (via `Limits::deadline_ms`), so a request admitted late degrades or
//!   sheds instead of overrunning.
//!
//! Analysis drains through a **dispatcher** thread that pops queued jobs in
//! batches and fans them out over [`disasm_core::par::run_jobs`]
//! (`Config::threads` wide) — the same bit-identical worker pool the batch
//! CLI path uses, with the same per-request flight-recorder capture feeding
//! the rolling buffer behind `/debug/timeline`.
//!
//! HTTP surface:
//!
//! * `GET /healthz` — **readiness**, not just liveness: `ok` while the
//!   instance can admit work; `503` with a JSON body (queue depth, shed
//!   count, in-flight) when the admission queue is saturated or the server
//!   is draining, so load balancers rotate a drowning instance out.
//! * `GET|POST /analyze` — submit one ELF path (`?path=` or request body);
//!   answers a JSON summary, a structured error, or a `503` shed.
//! * `GET /metrics` — Prometheus text exposition of the service counters
//!   (request totals and latency summaries labeled by `endpoint`), the
//!   shed/bad-request/disconnect counters, a `metadis_build_info` gauge,
//!   and the `metadis_slo_*` burn-rate gauges.
//! * `GET /debug/timeline` — Chrome trace-event JSON of the rolling flight
//!   buffer (the last [`ServeOptions::flight_capacity`] request timelines).
//! * `GET /debug/metrics/history` — the rolling time-series ring as a
//!   `metadis.series.v1` JSON document: cumulative snapshots taken by the
//!   reactor every [`ServeOptions::series_interval_ms`] (bounded by
//!   [`ServeOptions::series_window`]), each carrying counters, gauges,
//!   histogram summaries, and the SLO verdicts. `metadis top` renders it
//!   live; rates and windowed quantiles are derived client-side.
//! * `GET /debug/requests` — index of the retained per-request forensic
//!   records; `GET /debug/requests/<id>` answers one record as a
//!   `metadis.request.v1` bundle (timeline, correlated log slice, trace
//!   summary). `metadis forensics` snapshots both into a support bundle.
//!
//! **Request correlation**: the reactor mints an [`obs::ctx::RequestId`]
//! at accept time (or honors a client-supplied `X-Metadis-Request-Id`
//! header) and enters it as the thread's [`obs::ctx`] scope for
//! everything the request touches — so every log line (`req_id` field of
//! `metadis.log.v2`), timeline event, latency/queue-wait histogram
//! exemplar, and retained bundle carries the same id the client reads
//! back from the `X-Metadis-Request-Id` response header. Worker fan-out
//! through [`disasm_core::par::run_jobs`] propagates the scope, so a
//! request analyzed in parallel stays correlated end to end.
//!
//! The flight buffer itself is **tail-retaining**: when full, the oldest
//! *routine* record is evicted first; anomalous requests (error, shed,
//! degraded, p99-tail latency, or completed while an SLO window burned)
//! survive until only anomalies remain. Evictions are counted and the
//! occupancy exported, so a scrape can tell "quiet" from "churning".
//!
//! A **sampler** on the reactor thread snapshots the counters into an
//! [`obs::series::SeriesRing`] each tick and feeds an [`obs::slo::SloEngine`]
//! evaluating multi-window burn rates (availability vs a 99.9% target,
//! p99 latency vs a 5s ceiling). Threshold crossings emit one `slo burn`
//! warn event; the current verdicts ride `/metrics`, `/healthz`'s 503
//! JSON, and every history sample.
//!
//! Shutdown is graceful: [`Server::shutdown`] (or drop) refuses new
//! connections, drains queued and in-flight work bounded by
//! [`ServeOptions::drain_ms`], then flushes the flight buffer and emits a
//! final `shutdown complete` log line.
//!
//! Batch ingestion ([`Server::process_path`] / [`Server::process_batch`],
//! fed by `metadis serve` from stdin, a file, or a watched directory) rides
//! the same engine and counters. Everything is standard library only.

use crate::http::{self, RequestParser};
use disasm_core::limits::Deadline;
use disasm_core::{Config, Disassembler, Image};
use obs::ctx::RequestId;
use obs::log::Value;
use obs::series::{Sample, SeriesRing};
use obs::slo::{BurnWindows, Objective, ObjectiveKind, SloEngine, SloStatus};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Default for [`ServeOptions::flight_capacity`]: how many per-request
/// forensic records the tail-retaining flight buffer holds.
pub const FLIGHT_CAPACITY: usize = 8;

/// Schema tag of the per-request forensic bundle served by
/// `/debug/requests/<id>` and written by [`write_request_bundle`].
pub const REQUEST_SCHEMA: &str = "metadis.request.v1";

/// Admission-control and lifecycle knobs for [`Server::start_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Maximum concurrently held client connections; accepts beyond the
    /// cap are shed with a `503`.
    pub max_inflight: usize,
    /// Bound on the admission queue of parsed-but-unstarted `/analyze`
    /// requests. `0` admits nothing (every analysis request sheds) — a
    /// maintenance mode that also drives `/healthz` to `503`.
    pub queue_depth: usize,
    /// Per-client budget in milliseconds covering read + queue wait +
    /// analysis + write. `0` means unlimited.
    pub client_deadline_ms: u64,
    /// How long [`Server::shutdown`] waits for queued and in-flight work
    /// to drain before forcing connections closed.
    pub drain_ms: u64,
    /// Tick of the metric time-series sampler, milliseconds. The reactor
    /// snapshots every counter/gauge/summary into the history ring on this
    /// cadence and re-evaluates the SLO engine. `0` disables sampling
    /// (`/debug/metrics/history` answers an empty window).
    pub series_interval_ms: u64,
    /// How many samples the history ring retains (oldest evicted first);
    /// also scales the SLO burn windows. Clamped to ≥ 2.
    pub series_window: usize,
    /// How many per-request forensic records the flight buffer retains
    /// (anomalies preferentially — see the module docs). Clamped to ≥ 1.
    pub flight_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            max_inflight: 256,
            queue_depth: 64,
            client_deadline_ms: 10_000,
            drain_ms: 2_000,
            series_interval_ms: 1_000,
            series_window: 300,
            flight_capacity: FLIGHT_CAPACITY,
        }
    }
}

/// Endpoint label values for the per-endpoint request counter and latency
/// summary. `"batch"` is the serve command's stdin/file/watch ingestion
/// path; `"other"` catches 404s and rejected methods.
const ENDPOINTS: [&str; 8] = [
    "/analyze",
    "batch",
    "/metrics",
    "/healthz",
    "/debug/timeline",
    "/debug/metrics/history",
    "/debug/requests",
    "other",
];
const EP_ANALYZE: usize = 0;
const EP_BATCH: usize = 1;
const EP_OTHER: usize = ENDPOINTS.len() - 1;

/// Label index for a request path. Per-id bundle fetches
/// (`/debug/requests/<id>`) account under the `/debug/requests` label;
/// merely-prefixed paths like `/debug/requestsfoo` route to the 404
/// handler and must account under `other`.
fn endpoint_index(path: &str) -> usize {
    let path = if path == "/debug/requests" || path.starts_with("/debug/requests/") {
        "/debug/requests"
    } else {
        path
    };
    ENDPOINTS
        .iter()
        .position(|&e| e == path)
        .unwrap_or(EP_OTHER)
}

/// One request's forensic record: identity, outcome, captured timeline,
/// and the correlated slice of the structured log. Retained in the
/// tail-preferential flight buffer behind `/debug/timeline` and
/// `/debug/requests`.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Raw request-correlation id (`0` only for pre-context batch work).
    pub req_id: u64,
    /// What was analyzed (or the shed detail).
    pub path: String,
    /// Endpoint label the request accounted under.
    pub endpoint: &'static str,
    /// `"ok"`, `"error"`, or `"shed"`.
    pub outcome: &'static str,
    /// Why the record is worth keeping; empty for routine requests.
    pub anomalies: Vec<&'static str>,
    /// End-to-end service latency (load + pipeline), nanoseconds.
    pub latency_ns: u64,
    /// Accepted instructions (0 on error/shed).
    pub instructions: u64,
    /// Budget hits recorded by the run.
    pub degradations: u64,
    /// The request's flight-recorder timeline slice.
    pub events: Vec<obs::timeline::Event>,
    /// `metadis.log.v2` lines carrying this request's `req_id`.
    pub logs: Vec<String>,
}

impl RequestRecord {
    fn anomalous(&self) -> bool {
        !self.anomalies.is_empty()
    }
}

/// An admitted `/analyze` request waiting for a worker: which connection
/// to answer, what to analyze, the correlation id minted (or honored) for
/// it, and the client's remaining deadline.
#[derive(Debug)]
struct Job {
    conn: u64,
    req_id: RequestId,
    path: String,
    deadline: Deadline,
    queued: Instant,
}

/// Service state shared between the reactor, the dispatcher, and the
/// processing entry points. Counters are relaxed atomics (scrapes may
/// observe a request mid-update, which Prometheus tolerates by design);
/// the admission queue, the completion list, and the flight buffer are the
/// only mutexes, each touched a bounded number of times per request.
#[derive(Debug, Default)]
struct State {
    opts: ServeOptions,
    requests: AtomicU64,
    errors: AtomicU64,
    sheds: AtomicU64,
    shed_queue: AtomicU64,
    shed_deadline: AtomicU64,
    shed_connections: AtomicU64,
    bad_requests: AtomicU64,
    disconnects: AtomicU64,
    connections: AtomicU64,
    queue_len: AtomicU64,
    analysis_inflight: AtomicU64,
    text_bytes: AtomicU64,
    instructions: AtomicU64,
    wall_ns: AtomicU64,
    degradations: AtomicU64,
    alloc_bytes: AtomicU64,
    alloc_peak: AtomicU64,
    http_requests: AtomicU64,
    endpoint_requests: [AtomicU64; ENDPOINTS.len()],
    endpoint_latency: [obs::Histogram; ENDPOINTS.len()],
    latency: obs::Histogram,
    queue_wait: obs::Histogram,
    series: Mutex<SeriesTracker>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    completions: Mutex<Vec<(u64, Vec<u8>)>>,
    flight: Mutex<VecDeque<RequestRecord>>,
    flight_dumps: AtomicU64,
    flight_evictions: AtomicU64,
    lock_poisoned: AtomicU64,
    draining: AtomicBool,
    stop: AtomicBool,
}

impl State {
    /// Take a reactor-shared mutex, recovering from poisoning instead of
    /// propagating it. A worker that panics while holding one of these
    /// locks must not cascade into every later scrape and request
    /// unwinding too — the guarded structures (queue, completions, flight
    /// buffer, series ring) all tolerate a half-applied update (a lost
    /// job, a duplicate sample) far better than a dead service. Each
    /// recovery increments `metadis_lock_poisoned_total` so the incident
    /// is visible, not silent.
    fn lock<'a, T>(&self, m: &'a Mutex<T>) -> MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|poisoned| {
            self.lock_poisoned.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }
}

/// The rolling metric history and its SLO engine, sampled by the reactor
/// on the [`ServeOptions::series_interval_ms`] tick. One mutex, touched
/// once per tick and per `/debug/metrics/history` or `/healthz` render —
/// never on the request path.
#[derive(Debug)]
struct SeriesTracker {
    /// Monotonic origin for sample timestamps (server start).
    origin: Instant,
    ring: SeriesRing,
    engine: SloEngine,
    /// Statuses from the most recent evaluation, for `/metrics` gauges and
    /// the `/healthz` detail block between ticks.
    statuses: Vec<SloStatus>,
}

impl Default for SeriesTracker {
    fn default() -> SeriesTracker {
        SeriesTracker::new(&ServeOptions::default())
    }
}

impl SeriesTracker {
    fn new(opts: &ServeOptions) -> SeriesTracker {
        let cap = opts.series_window.max(2);
        SeriesTracker {
            origin: Instant::now(),
            ring: SeriesRing::new(cap),
            engine: SloEngine::new(slo_objectives(), BurnWindows::scaled_to(cap)),
            statuses: Vec::new(),
        }
    }
}

/// The service's declarative SLOs.
///
/// * `availability` — sheds + errors may consume at most 0.1% of attempted
///   requests (0.999 target) before the budget burns at 1.0.
/// * `latency_p99` — the windowed p99 of per-request service latency must
///   stay under 5s (the same ceiling the serve bench gates on).
fn slo_objectives() -> Vec<Objective> {
    vec![
        Objective {
            name: "availability".to_string(),
            kind: ObjectiveKind::Availability {
                bad: vec!["sheds".to_string(), "errors".to_string()],
                total: vec![
                    "requests".to_string(),
                    "errors".to_string(),
                    "sheds".to_string(),
                ],
                target: 0.999,
            },
        },
        Objective {
            name: "latency_p99".to_string(),
            kind: ObjectiveKind::LatencyQuantile {
                summary: "latency_ns".to_string(),
                q: 0.99,
                ceiling_ns: 5_000_000_000,
            },
        },
    ]
}

/// Snapshot every cumulative counter, gauge, and histogram into one
/// [`Sample`] at `ts_ns`.
fn build_sample(st: &State, ts_ns: u64) -> Sample {
    let mut s = Sample {
        ts_ns,
        ..Sample::default()
    };
    for (name, v) in [
        ("requests", &st.requests),
        ("errors", &st.errors),
        ("sheds", &st.sheds),
        ("shed_queue", &st.shed_queue),
        ("shed_deadline", &st.shed_deadline),
        ("shed_connections", &st.shed_connections),
        ("bad_requests", &st.bad_requests),
        ("disconnects", &st.disconnects),
        ("http_requests", &st.http_requests),
        ("text_bytes", &st.text_bytes),
        ("instructions", &st.instructions),
        ("degradations", &st.degradations),
    ] {
        s.counters
            .insert(name.to_string(), v.load(Ordering::Relaxed));
    }
    for (name, v) in [
        ("connections", &st.connections),
        ("queue_depth", &st.queue_len),
        ("inflight", &st.analysis_inflight),
    ] {
        s.gauges.insert(name.to_string(), v.load(Ordering::Relaxed));
    }
    s.summaries
        .insert("latency_ns".to_string(), st.latency.summary());
    s.summaries
        .insert("queue_wait_ns".to_string(), st.queue_wait.summary());
    // Exemplars ride the sample only when a tagged request has landed;
    // a series with none serializes byte-identically to pre-exemplar docs.
    for (name, h) in [
        ("latency_ns", &st.latency),
        ("queue_wait_ns", &st.queue_wait),
    ] {
        let ex = h.exemplars();
        if !ex.is_empty() {
            s.exemplars.insert(name.to_string(), ex);
        }
    }
    s
}

/// One sampler tick: push a snapshot into the ring, re-evaluate the SLO
/// engine against it, attach the statuses to the sample, and log burn
/// threshold crossings (once per crossing, not per tick).
fn sample_series(st: &State) {
    let eval = {
        let mut tr = st.lock(&st.series);
        let ts_ns = tr.origin.elapsed().as_nanos() as u64;
        let sample = build_sample(st, ts_ns);
        let SeriesTracker {
            ring,
            engine,
            statuses,
            ..
        } = &mut *tr;
        ring.push(sample);
        let eval = engine.evaluate(ring);
        if let Some(latest) = ring.latest_mut() {
            latest.slo = eval.statuses.clone();
        }
        statuses.clone_from(&eval.statuses);
        eval
    };
    for name in &eval.crossed {
        let s = eval
            .statuses
            .iter()
            .find(|s| &s.objective == name)
            .expect("crossed objective has a status");
        obs::log::warn(
            "serve",
            "slo burn",
            &[
                ("objective", Value::Str(name.clone())),
                ("burn_fast", Value::F64(s.burn_fast)),
                ("burn_slow", Value::F64(s.burn_slow)),
            ],
        );
    }
    for name in &eval.recovered {
        obs::log::info(
            "serve",
            "slo recovered",
            &[("objective", Value::Str(name.clone()))],
        );
    }
}

/// `metadis.series.v1` JSON of the current history ring, for
/// `/debug/metrics/history`.
fn render_history(st: &State) -> String {
    let tr = st.lock(&st.series);
    obs::series::write_history_json(
        st.opts.series_interval_ms,
        st.opts.series_window,
        tr.ring.iter(),
    )
}

/// Account one answered request against its endpoint label.
fn note_endpoint(st: &State, ep: usize, latency_ns: u64) {
    st.endpoint_requests[ep].fetch_add(1, Ordering::Relaxed);
    st.endpoint_latency[ep].record(latency_ns);
}

/// Outcome of one processed request, for the serve loop's own accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestSummary {
    /// Text bytes disassembled.
    pub text_bytes: u64,
    /// Accepted instructions.
    pub instructions: u64,
    /// Wall time of the pipeline, nanoseconds.
    pub wall_ns: u64,
    /// Budget hits recorded by the run.
    pub degradations: u64,
}

/// The service front-end: a bound nonblocking listener, the reactor and
/// dispatcher threads, and the shared counters. Dropping the server (or
/// calling [`Server::shutdown`]) drains and stops both threads.
#[derive(Debug)]
pub struct Server {
    state: Arc<State>,
    addr: SocketAddr,
    reactor: Option<std::thread::JoinHandle<()>>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) with default
    /// [`ServeOptions`] and a default analysis [`Config`].
    pub fn start(addr: &str) -> std::io::Result<Server> {
        Server::start_with(addr, ServeOptions::default(), Config::default())
    }

    /// Bind `addr` and start the reactor (connection event loop) and the
    /// dispatcher (admission-queue worker) threads. `cfg` is the analysis
    /// configuration used for HTTP `/analyze` requests; its `threads`
    /// field sizes the worker pool, preserving the bit-identical
    /// `--threads` contract.
    pub fn start_with(addr: &str, opts: ServeOptions, cfg: Config) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // The flight recorder stays on for the life of the service: it is
        // bounded (per-thread ring) and cheap, and it is what feeds the
        // rolling per-request buffer behind `/debug/timeline`.
        obs::timeline::set_enabled(true);
        listener.set_nonblocking(true)?;
        let state = Arc::new(State {
            opts,
            series: Mutex::new(SeriesTracker::new(&opts)),
            ..State::default()
        });
        let reactor_state = Arc::clone(&state);
        let reactor = std::thread::spawn(move || run_reactor(listener, &reactor_state));
        let dispatcher_state = Arc::clone(&state);
        let dispatcher = std::thread::spawn(move || run_dispatcher(&dispatcher_state, cfg));
        obs::log::info(
            "serve",
            "listening",
            &[
                ("addr", Value::Str(addr.to_string())),
                ("max_inflight", (opts.max_inflight as u64).into()),
                ("queue_depth", (opts.queue_depth as u64).into()),
                ("client_deadline_ms", opts.client_deadline_ms.into()),
            ],
        );
        Ok(Server {
            state,
            addr,
            reactor: Some(reactor),
            dispatcher: Some(dispatcher),
        })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests processed so far.
    pub fn requests(&self) -> u64 {
        self.state.requests.load(Ordering::Relaxed)
    }

    /// Requests that failed (unreadable/unparsable input).
    pub fn errors(&self) -> u64 {
        self.state.errors.load(Ordering::Relaxed)
    }

    /// Requests shed by admission control (queue full, connection cap,
    /// deadline exhausted, or draining).
    pub fn sheds(&self) -> u64 {
        self.state.sheds.load(Ordering::Relaxed)
    }

    /// Disassemble the ELF at `path` with `cfg`, folding the run into the
    /// service counters and emitting request-scoped log events.
    pub fn process_path(&self, path: &str, cfg: &Config) -> Result<RequestSummary, String> {
        process_on(&self.state, path, cfg, EP_BATCH)
    }

    /// Disassemble a batch of ELF paths concurrently on a bounded worker
    /// pool (`cfg.threads` wide; a single-threaded config degenerates to a
    /// sequential loop). Results come back in input order. Service counters
    /// are atomics, per-request allocation accounting is thread-local, and
    /// log records are written atomically — so the per-request telemetry is
    /// the same as if the batch had been processed one path at a time.
    pub fn process_batch(
        &self,
        paths: &[String],
        cfg: &Config,
    ) -> Vec<Result<RequestSummary, String>> {
        disasm_core::par::run_jobs("serve.batch", paths.len(), cfg.threads.max(1), |i| {
            self.process_path(&paths[i], cfg)
        })
    }

    /// Render the legacy (`text/plain; version=0.0.4`) Prometheus text
    /// exposition of the service counters — no exemplar suffixes, which
    /// only the OpenMetrics format served by `GET /metrics` under an
    /// `Accept: application/openmetrics-text` header may carry.
    pub fn render_metrics(&self) -> String {
        render_prometheus(&self.state, false)
    }

    /// Gracefully stop: refuse new connections, drain queued and in-flight
    /// work (bounded by [`ServeOptions::drain_ms`]), flush the flight
    /// buffer, emit the final log line, and release the port.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        if self.reactor.is_none() && self.dispatcher.is_none() {
            return; // already stopped (shutdown then drop)
        }
        let st = &self.state;
        if !st.draining.swap(true, Ordering::Relaxed) {
            obs::log::info(
                "serve",
                "draining",
                &[
                    ("queue_depth", st.queue_len.load(Ordering::Relaxed).into()),
                    (
                        "analysis_inflight",
                        st.analysis_inflight.load(Ordering::Relaxed).into(),
                    ),
                    ("connections", st.connections.load(Ordering::Relaxed).into()),
                ],
            );
        }
        // Bounded drain: wait for the queue, the workers, and the open
        // connections to finish; past the deadline, force the stop.
        let drain_deadline = Instant::now() + Duration::from_millis(st.opts.drain_ms);
        while Instant::now() < drain_deadline {
            let idle = st.queue_len.load(Ordering::Relaxed) == 0
                && st.analysis_inflight.load(Ordering::Relaxed) == 0
                && st.connections.load(Ordering::Relaxed) == 0
                && st.lock(&st.completions).is_empty();
            if idle {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        st.stop.store(true, Ordering::Relaxed);
        st.queue_cv.notify_all();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        // Flush the flight buffer (a no-op when empty) and leave one final
        // structured record of what this instance did.
        dump_flight(st, "shutdown", "-");
        obs::log::info(
            "serve",
            "shutdown complete",
            &[
                ("requests", st.requests.load(Ordering::Relaxed).into()),
                ("errors", st.errors.load(Ordering::Relaxed).into()),
                ("shed", st.sheds.load(Ordering::Relaxed).into()),
            ],
        );
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Disassemble the ELF at `path` with `cfg` on the calling thread, folding
/// the run into the service counters, the latency histogram, the flight
/// buffer, and the structured log. Shared by the batch entry points
/// (`ep` = [`EP_BATCH`]) and the dispatcher's HTTP jobs ([`EP_ANALYZE`]).
fn process_on(st: &State, path: &str, cfg: &Config, ep: usize) -> Result<RequestSummary, String> {
    let req_id = obs::ctx::current_raw();
    let log_mark = obs::log::seq();
    obs::log::info(
        "serve",
        "request begin",
        &[("path", Value::Str(path.to_string()))],
    );
    let started = Instant::now();
    let tl_mark = obs::timeline::mark();
    obs::timeline::begin("serve.request");
    let image = match load_image(path) {
        Ok(img) => img,
        Err(e) => {
            obs::timeline::end("serve.request");
            let elapsed_ns = started.elapsed().as_nanos() as u64;
            st.latency.record_tagged(elapsed_ns, req_id);
            note_endpoint(st, ep, elapsed_ns);
            st.errors.fetch_add(1, Ordering::Relaxed);
            obs::log::error(
                "serve",
                "request failed",
                &[
                    ("path", Value::Str(path.to_string())),
                    ("error", Value::Str(e.clone())),
                ],
            );
            retain_request(
                st,
                make_record(st, path, ep, "error", elapsed_ns, 0, 0, tl_mark, log_mark),
            );
            dump_flight(st, "error", path);
            return Err(e);
        }
    };
    let d = Disassembler::new(cfg.clone()).disassemble(&image);
    let summary = RequestSummary {
        text_bytes: d.trace.text_bytes,
        instructions: d.inst_starts.len() as u64,
        wall_ns: d.trace.total_wall_ns,
        degradations: d.trace.degradations.len() as u64,
    };
    st.requests.fetch_add(1, Ordering::Relaxed);
    st.text_bytes
        .fetch_add(summary.text_bytes, Ordering::Relaxed);
    st.instructions
        .fetch_add(summary.instructions, Ordering::Relaxed);
    st.wall_ns.fetch_add(summary.wall_ns, Ordering::Relaxed);
    st.degradations
        .fetch_add(summary.degradations, Ordering::Relaxed);
    st.alloc_bytes
        .fetch_add(d.trace.alloc_bytes, Ordering::Relaxed);
    st.alloc_peak
        .fetch_max(d.trace.alloc_peak, Ordering::Relaxed);
    obs::timeline::end("serve.request");
    let elapsed_ns = started.elapsed().as_nanos() as u64;
    st.latency.record_tagged(elapsed_ns, req_id);
    note_endpoint(st, ep, elapsed_ns);
    obs::log::info(
        "serve",
        "request done",
        &[
            ("path", Value::Str(path.to_string())),
            ("instructions", summary.instructions.into()),
            ("wall_ns", summary.wall_ns.into()),
            ("degradations", summary.degradations.into()),
        ],
    );
    retain_request(
        st,
        make_record(
            st,
            path,
            ep,
            "ok",
            elapsed_ns,
            summary.instructions,
            summary.degradations,
            tl_mark,
            log_mark,
        ),
    );
    if summary.degradations > 0 {
        dump_flight(st, "degradation", path);
    }
    Ok(summary)
}

/// Assemble one [`RequestRecord`]: drain the calling thread's timeline
/// events since `mark` (each worker drains its own ring, so requests never
/// mix events), slice the structured log down to this request's lines, and
/// classify what — if anything — makes the request anomalous.
#[allow(clippy::too_many_arguments)]
fn make_record(
    st: &State,
    path: &str,
    ep: usize,
    outcome: &'static str,
    latency_ns: u64,
    instructions: u64,
    degradations: u64,
    mark: obs::timeline::Mark,
    log_mark: u64,
) -> RequestRecord {
    let req_id = obs::ctx::current_raw();
    RequestRecord {
        req_id,
        path: path.to_string(),
        endpoint: ENDPOINTS[ep],
        outcome,
        anomalies: classify_anomalies(st, outcome, latency_ns, degradations),
        latency_ns,
        instructions,
        degradations,
        events: obs::timeline::take_since(mark),
        logs: log_slice(log_mark, req_id),
    }
}

/// Why a request deserves preferential retention. Ordering is stable:
/// outcome first, then latency, then the SLO state at completion time.
fn classify_anomalies(
    st: &State,
    outcome: &'static str,
    latency_ns: u64,
    degradations: u64,
) -> Vec<&'static str> {
    let mut anomalies = Vec::new();
    match outcome {
        "error" => anomalies.push("error"),
        "shed" => anomalies.push("shed"),
        _ => {}
    }
    if degradations > 0 {
        anomalies.push("degraded");
    }
    // p99 tail: once the histogram has enough mass for the quantile to
    // mean anything, a request at or above the cumulative p99 is tail
    // latency worth keeping.
    let s = st.latency.summary();
    if s.count >= 20 && latency_ns >= s.quantile(0.99) {
        anomalies.push("p99-tail");
    }
    // SLO burn: a request that completed while an objective's fast window
    // was burning hot is evidence for the incident review.
    let burning = st
        .lock(&st.series)
        .statuses
        .iter()
        .any(|slo| slo.breached || slo.burn_fast > 1.0);
    if burning {
        anomalies.push("slo-burn");
    }
    anomalies
}

/// The structured-log lines belonging to one request: everything still in
/// the ring at or after `from` that carries the request's `req_id`. Empty
/// outside a request context (there is nothing safe to attribute).
fn log_slice(from: u64, req_id: u64) -> Vec<String> {
    if req_id == 0 {
        return Vec::new();
    }
    let tag = format!("\"req_id\":\"{req_id:016x}\"");
    obs::log::since(from)
        .into_iter()
        .filter(|line| line.contains(&tag))
        .collect()
}

/// Push one record into the flight buffer under tail-based retention:
/// when full, the oldest *routine* record is evicted first; only a buffer
/// already full of anomalies evicts its oldest anomaly. Every eviction is
/// counted (`metadis_flight_evictions_total`).
fn retain_request(st: &State, rec: RequestRecord) {
    let cap = st.opts.flight_capacity.max(1);
    let mut flight = st.lock(&st.flight);
    while flight.len() >= cap {
        let victim = flight
            .iter()
            .position(|r| !r.anomalous())
            .unwrap_or_default();
        flight.remove(victim);
        st.flight_evictions.fetch_add(1, Ordering::Relaxed);
    }
    flight.push_back(rec);
}

/// Anomaly hook: write the buffered request timelines to disk as one
/// Chrome trace and log where it went. Called on request errors, degraded
/// runs, and shutdown; failures to write are logged, never propagated —
/// the dump is diagnostic, not part of the request.
fn dump_flight(st: &State, reason: &str, path: &str) {
    let (events, requests) = {
        let flight = st.lock(&st.flight);
        let events: Vec<obs::timeline::Event> = flight
            .iter()
            .flat_map(|r| r.events.iter().copied())
            .collect();
        let requests: Vec<&str> = flight.iter().map(|r| r.path.as_str()).collect();
        (events, requests.join(","))
    };
    if events.is_empty() {
        return;
    }
    let seq = st.flight_dumps.fetch_add(1, Ordering::Relaxed);
    let out =
        std::env::temp_dir().join(format!("metadis-flight-{}-{seq}.json", std::process::id()));
    match std::fs::write(&out, obs::chrome::write_chrome_trace(&events)) {
        Ok(()) => obs::log::warn(
            "serve",
            "flight recorder dumped",
            &[
                ("reason", Value::Str(reason.to_string())),
                ("path", Value::Str(path.to_string())),
                ("dump", Value::Str(out.display().to_string())),
                ("events", (events.len() as u64).into()),
                ("requests", Value::Str(requests)),
            ],
        ),
        Err(e) => obs::log::error(
            "serve",
            "flight dump failed",
            &[
                ("dump", Value::Str(out.display().to_string())),
                ("error", Value::Str(e.to_string())),
            ],
        ),
    }
}

/// Read ELF bytes at `path` into an [`Image`].
fn load_image(path: &str) -> Result<Image, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let elf = elfobj::Elf::parse(&bytes).map_err(|e| format!("cannot parse '{path}': {e}"))?;
    Image::from_elf(&elf).ok_or_else(|| format!("'{path}' has no executable section"))
}

// ---------------------------------------------------------------------------
// Dispatcher: admission queue -> worker pool
// ---------------------------------------------------------------------------

/// Pop queued jobs in batches and fan each batch out over the bounded
/// worker pool, pushing prebuilt HTTP responses to the completion list the
/// reactor polls. Runs until `stop`; the graceful-drain window (draining
/// set, stop not yet) keeps processing so in-flight clients get answers.
fn run_dispatcher(st: &Arc<State>, cfg: Config) {
    let threads = cfg.threads.max(1);
    loop {
        let batch: Vec<Job> = {
            let mut q = st.lock(&st.queue);
            while q.is_empty() {
                if st.stop.load(Ordering::Relaxed) {
                    return;
                }
                let (guard, _) = st
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(20))
                    .unwrap_or_else(|poisoned| {
                        st.lock_poisoned.fetch_add(1, Ordering::Relaxed);
                        poisoned.into_inner()
                    });
                q = guard;
            }
            let n = q.len().min(threads);
            let batch: Vec<Job> = q.drain(..n).collect();
            st.queue_len.store(q.len() as u64, Ordering::Relaxed);
            batch
        };
        st.analysis_inflight
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        let responses = disasm_core::par::run_jobs("serve.queue", batch.len(), threads, |i| {
            handle_job(st, &batch[i], &cfg)
        });
        {
            let mut done = st.lock(&st.completions);
            for (job, resp) in batch.iter().zip(responses) {
                done.push((job.conn, resp));
            }
        }
        st.analysis_inflight
            .fetch_sub(batch.len() as u64, Ordering::Relaxed);
    }
}

/// Run one admitted job on a worker: account the queue wait, shed if the
/// client's deadline is already spent, otherwise analyze under the
/// *remaining* deadline budget and render the HTTP response.
fn handle_job(st: &State, job: &Job, cfg: &Config) -> Vec<u8> {
    // Re-enter the request's correlation scope on the worker: the job was
    // minted on the reactor, the analysis happens here, and both must
    // stamp the same id on logs, events, and exemplars.
    let _ctx = obs::ctx::scope(job.req_id);
    let waited_ns = job.queued.elapsed().as_nanos() as u64;
    st.queue_wait.record_tagged(waited_ns, job.req_id.raw());
    if job.deadline.exceeded() {
        note_endpoint(st, EP_ANALYZE, waited_ns);
        return shed(st, "deadline", &job.path, EP_ANALYZE);
    }
    let remaining_ns = job.deadline.remaining_ns();
    let result = if remaining_ns == u64::MAX {
        process_on(st, &job.path, cfg, EP_ANALYZE)
    } else {
        // Queue wait spent part of the client's budget; the analysis gets
        // only what is left (floored at 1ms so the run degrades through
        // the normal Limits machinery instead of being rejected here).
        let remaining_ms = (remaining_ns / 1_000_000).max(1);
        let mut scoped = cfg.clone();
        scoped.limits.deadline_ms = Some(match scoped.limits.deadline_ms {
            Some(ms) => ms.min(remaining_ms),
            None => remaining_ms,
        });
        process_on(st, &job.path, &scoped, EP_ANALYZE)
    };
    match result {
        Ok(s) => {
            let mut w = obs::json::JsonWriter::new();
            w.begin_obj();
            w.field_str("path", &job.path);
            w.field_u64("instructions", s.instructions);
            w.field_u64("text_bytes", s.text_bytes);
            w.field_u64("wall_ns", s.wall_ns);
            w.field_u64("degradations", s.degradations);
            w.field_u64("queue_wait_ns", waited_ns);
            w.end_obj();
            respond("200 OK", "application/json", &w.finish())
        }
        Err(e) => {
            let category = if e.starts_with("cannot read") {
                "io"
            } else {
                "parse"
            };
            respond(
                "422 Unprocessable Entity",
                "application/json",
                &error_body(&e, category),
            )
        }
    }
}

/// Build an HTTP response that echoes the request-correlation id: when a
/// request scope is active, the `X-Metadis-Request-Id` header carries the
/// same id stamped on the request's logs, events, and exemplars — the
/// client-side end of the correlation chain. Outside a scope this is
/// plain [`http::respond`].
fn respond(status: &str, content_type: &str, body: &str) -> Vec<u8> {
    match obs::ctx::current() {
        Some(id) => http::respond_with(
            status,
            content_type,
            &[("X-Metadis-Request-Id", &id.to_string())],
            body,
        ),
        None => http::respond(status, content_type, body),
    }
}

// ---------------------------------------------------------------------------
// Reactor: nonblocking accept/read/route/write event loop
// ---------------------------------------------------------------------------

/// What phase of its one-request lifecycle a connection is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Reading and incrementally parsing the request.
    Reading,
    /// Admitted to the queue; waiting for a worker's completion.
    Waiting,
    /// Writing the response; closed when fully written.
    Writing,
}

/// One nonblocking client connection.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    out: Vec<u8>,
    written: usize,
    state: ConnState,
    deadline: Deadline,
    /// Correlation id minted at accept time; replaced by a valid
    /// client-supplied `X-Metadis-Request-Id` once the request parses.
    req_id: RequestId,
}

impl Conn {
    fn new(stream: TcpStream, deadline: Deadline) -> Conn {
        Conn {
            stream,
            parser: RequestParser::new(),
            out: Vec::new(),
            written: 0,
            state: ConnState::Reading,
            deadline,
            req_id: RequestId::mint(),
        }
    }

    fn start_write(&mut self, response: Vec<u8>) {
        self.out = response;
        self.written = 0;
        self.state = ConnState::Writing;
    }
}

/// The readiness-polling event loop: accept within the connection cap,
/// drive every connection's incremental read/parse/route/write state
/// machine, deliver worker completions, and shed what cannot be admitted.
/// Single-threaded — per-connection state needs no locks — and strictly
/// nonblocking, so no client can stall another.
fn run_reactor(listener: TcpListener, st: &Arc<State>) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 0;
    let client_budget_ns = match st.opts.client_deadline_ms {
        0 => u64::MAX,
        ms => ms.saturating_mul(1_000_000),
    };
    let series_tick =
        (st.opts.series_interval_ms > 0).then(|| Duration::from_millis(st.opts.series_interval_ms));
    let mut last_sample = Instant::now();
    while !st.stop.load(Ordering::Relaxed) {
        let mut progressed = false;
        // Series sampler: snapshot the counters into the history ring and
        // re-evaluate the SLOs on the configured tick. Runs on the reactor
        // thread (resolution bounded by the 1ms idle sleep), so the
        // request path pays nothing for it.
        if let Some(tick) = series_tick {
            if last_sample.elapsed() >= tick {
                sample_series(st);
                last_sample = Instant::now();
            }
        }
        // Accept — up to the connection cap; beyond it (or while
        // draining), answer a structured 503 best-effort and close.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    progressed = true;
                    if st.draining.load(Ordering::Relaxed) {
                        refuse(st, stream, "draining");
                    } else if conns.len() >= st.opts.max_inflight {
                        st.shed_connections.fetch_add(1, Ordering::Relaxed);
                        refuse(st, stream, "connections");
                    } else if stream.set_nonblocking(true).is_ok() {
                        conns.insert(
                            next_id,
                            Conn::new(stream, Deadline::with_budget_ns(client_budget_ns)),
                        );
                        next_id += 1;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break, // transient accept failure; retry next tick
            }
        }
        // Deliver completed analyses to their waiting connections before
        // driving the write side, so responses go out this tick.
        {
            let mut done = st.lock(&st.completions);
            for (id, resp) in done.drain(..) {
                if let Some(c) = conns.get_mut(&id) {
                    if c.state == ConnState::Waiting {
                        c.start_write(resp);
                        progressed = true;
                    }
                }
            }
        }
        // Drive every connection's state machine.
        let ids: Vec<u64> = conns.keys().copied().collect();
        for id in ids {
            let remove = {
                let c = conns.get_mut(&id).expect("id collected above");
                drive_conn(st, id, c, &mut progressed)
            };
            if remove {
                conns.remove(&id);
            }
        }
        st.connections.store(conns.len() as u64, Ordering::Relaxed);
        if st.draining.load(Ordering::Relaxed)
            && conns.is_empty()
            && st.queue_len.load(Ordering::Relaxed) == 0
            && st.analysis_inflight.load(Ordering::Relaxed) == 0
        {
            break; // drained clean — nothing left to answer
        }
        if !progressed {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    // Forced exit: remaining connections close on drop.
    st.connections.store(0, Ordering::Relaxed);
}

/// Answer a connection we will not hold (cap hit or draining) with a
/// structured 503, best-effort and nonblocking, then close it.
fn refuse(st: &State, stream: TcpStream, reason: &'static str) {
    // Even a refused connection gets a correlation id: the 503 body and
    // header match the shed's log line and retained record.
    let _ctx = obs::ctx::scope(RequestId::mint());
    let body = shed(st, reason, "pre-admission", EP_OTHER);
    if stream.set_nonblocking(true).is_ok() {
        let mut s = stream;
        let _ = s.write(&body);
    }
}

/// Advance one connection. Returns `true` when the connection is finished
/// (response fully written, peer gone, or write deadline blown) and should
/// be dropped.
fn drive_conn(st: &Arc<State>, id: u64, c: &mut Conn, progressed: &mut bool) -> bool {
    // Everything the reactor does on this connection's behalf — parse
    // warnings, sheds, routing — logs and records under its request id.
    let _ctx = obs::ctx::scope(c.req_id);
    if c.state == ConnState::Reading {
        let mut buf = [0u8; 4096];
        loop {
            match c.stream.read(&mut buf) {
                Ok(0) => {
                    st.disconnects.fetch_add(1, Ordering::Relaxed);
                    return true; // peer closed mid-request
                }
                Ok(n) => {
                    *progressed = true;
                    match c.parser.feed(&buf[..n]) {
                        Ok(Some(req)) => {
                            route(st, id, c, &req);
                            break;
                        }
                        Ok(None) => {} // keep reading
                        Err(pe) => {
                            st.bad_requests.fetch_add(1, Ordering::Relaxed);
                            obs::log::warn(
                                "serve",
                                "bad request",
                                &[
                                    ("reason", pe.reason().into()),
                                    ("buffered", (c.parser.buffered() as u64).into()),
                                ],
                            );
                            c.start_write(respond(
                                pe.status(),
                                "application/json",
                                &error_body(pe.reason(), "parse"),
                            ));
                            break;
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    st.disconnects.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
            }
        }
        // Slowloris guard: a client that cannot finish its request within
        // its deadline is shed, freeing the slot.
        if c.state == ConnState::Reading && c.deadline.exceeded() {
            let body = shed(st, "deadline", "read", EP_OTHER);
            c.start_write(body);
        }
    }
    if c.state == ConnState::Writing {
        loop {
            match c.stream.write(&c.out[c.written..]) {
                Ok(0) => return true,
                Ok(n) => {
                    *progressed = true;
                    c.written += n;
                    if c.written == c.out.len() {
                        return true; // Connection: close — done
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    return c.deadline.exceeded(); // give up only past deadline
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
    }
    false
}

/// Route one complete request: observability endpoints answer inline;
/// `/analyze` goes through admission control.
fn route(st: &Arc<State>, id: u64, c: &mut Conn, req: &http::Request) {
    st.http_requests.fetch_add(1, Ordering::Relaxed);
    // Honor a client-supplied correlation id (distributed callers thread
    // one id through a whole fan-out); otherwise keep the accept-time
    // mint. Either way the id governs every log line, event, exemplar,
    // and the response header from here on.
    //
    // Trust model: supplied ids are taken at face value — no uniqueness
    // check against retained records. A client that deliberately reuses
    // another request's id can shadow that request's forensic bundle
    // (`render_request_bundle` resolves duplicates newest-wins) and
    // pollute its log/exemplar correlation. The debug surface therefore
    // assumes callers are trusted operators/peers, the same assumption
    // `/debug/*` already makes; deploy behind the same boundary.
    if let Some(supplied) = req.header("X-Metadis-Request-Id") {
        if let Some(rid) = RequestId::parse(supplied) {
            c.req_id = rid;
        }
    }
    let _ctx = obs::ctx::scope(c.req_id);
    let ep = endpoint_index(req.path());
    let sw = obs::Stopwatch::start();
    let method = req.method.as_str();
    if method != "GET" && method != "POST" {
        c.start_write(respond(
            "405 Method Not Allowed",
            "application/json",
            &error_body("method not allowed", "usage"),
        ));
        note_endpoint(st, ep, sw.elapsed_ns());
        return;
    }
    match req.path() {
        "/metrics" => {
            // Content negotiation: exemplars are only legal in the
            // OpenMetrics exposition, so the legacy version=0.0.4 text
            // (which a plain parser reads as "value then optional
            // timestamp") must never carry them or the whole scrape
            // becomes unparsable.
            let om = accepts_openmetrics(req.header("Accept"));
            let body = render_prometheus(st, om);
            let content_type = if om {
                OPENMETRICS_CONTENT_TYPE
            } else {
                PROM_TEXT_CONTENT_TYPE
            };
            c.start_write(respond("200 OK", content_type, &body));
            note_endpoint(st, ep, sw.elapsed_ns());
        }
        "/debug/timeline" => {
            let body = render_timeline(st);
            c.start_write(respond("200 OK", "application/json", &body));
            note_endpoint(st, ep, sw.elapsed_ns());
        }
        "/debug/metrics/history" => {
            let body = render_history(st);
            c.start_write(respond("200 OK", "application/json", &body));
            note_endpoint(st, ep, sw.elapsed_ns());
        }
        "/debug/requests" => {
            let body = render_requests_index(st);
            c.start_write(respond("200 OK", "application/json", &body));
            note_endpoint(st, ep, sw.elapsed_ns());
        }
        path if path.starts_with("/debug/requests/") => {
            let wanted = path
                .strip_prefix("/debug/requests/")
                .and_then(RequestId::parse);
            let bundle = wanted.and_then(|rid| render_request_bundle(st, rid));
            match bundle {
                Some(body) => c.start_write(respond("200 OK", "application/json", &body)),
                None => c.start_write(respond(
                    "404 Not Found",
                    "application/json",
                    &error_body("no retained record for that request id", "usage"),
                )),
            }
            note_endpoint(st, ep, sw.elapsed_ns());
        }
        "/healthz" => {
            let (ready, body) = readiness(st);
            let status = if ready {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            let content_type = if ready {
                "text/plain"
            } else {
                "application/json"
            };
            c.start_write(respond(status, content_type, &body));
            note_endpoint(st, ep, sw.elapsed_ns());
        }
        "/analyze" => {
            let path = req.query_param("path").map(str::to_string).or_else(|| {
                let s = String::from_utf8_lossy(&req.body).trim().to_string();
                (!s.is_empty()).then_some(s)
            });
            let Some(path) = path else {
                st.bad_requests.fetch_add(1, Ordering::Relaxed);
                c.start_write(respond(
                    "400 Bad Request",
                    "application/json",
                    &error_body("missing ELF path ('?path=' or request body)", "usage"),
                ));
                note_endpoint(st, ep, sw.elapsed_ns());
                return;
            };
            if st.draining.load(Ordering::Relaxed) {
                let body = shed(st, "draining", &path, ep);
                c.start_write(body);
                note_endpoint(st, ep, sw.elapsed_ns());
                return;
            }
            let mut q = st.lock(&st.queue);
            if q.len() >= st.opts.queue_depth {
                drop(q);
                st.shed_queue.fetch_add(1, Ordering::Relaxed);
                let body = shed(st, "queue-full", &path, ep);
                c.start_write(body);
                note_endpoint(st, ep, sw.elapsed_ns());
            } else {
                q.push_back(Job {
                    conn: id,
                    req_id: c.req_id,
                    path,
                    deadline: c.deadline,
                    queued: Instant::now(),
                });
                st.queue_len.store(q.len() as u64, Ordering::Relaxed);
                drop(q);
                st.queue_cv.notify_one();
                // Admitted: the endpoint is accounted when the worker
                // answers (`handle_job` / `process_on`), with the same
                // load+analysis latency the overall summary records.
                c.state = ConnState::Waiting;
            }
        }
        _ => {
            c.start_write(respond(
                "404 Not Found",
                "application/json",
                &error_body("not found", "usage"),
            ));
            note_endpoint(st, ep, sw.elapsed_ns());
        }
    }
}

/// Account one shed and render its structured 503 body. Every shed — queue
/// full, connection cap, deadline spent, draining — funnels through here,
/// so the counter, the warn log event, and the timeline instant always
/// agree.
fn shed(st: &State, reason: &'static str, detail: &str, ep: usize) -> Vec<u8> {
    st.sheds.fetch_add(1, Ordering::Relaxed);
    if reason == "deadline" {
        st.shed_deadline.fetch_add(1, Ordering::Relaxed);
    }
    let log_mark = obs::log::seq();
    let tl_mark = obs::timeline::mark();
    obs::timeline::instant("serve.shed", 0);
    obs::log::warn(
        "serve",
        "request shed",
        &[
            ("category", "overload".into()),
            ("reason", reason.into()),
            ("detail", Value::Str(detail.to_string())),
            ("queue_depth", st.queue_len.load(Ordering::Relaxed).into()),
            ("shed_total", st.sheds.load(Ordering::Relaxed).into()),
        ],
    );
    // Sheds are anomalies by definition: retain the evidence (the warn
    // line and the shed instant) under the request's id so the 503 a
    // client holds resolves to a server-side record.
    if obs::ctx::current().is_some() {
        retain_request(
            st,
            make_record(st, detail, ep, "shed", 0, 0, 0, tl_mark, log_mark),
        );
    }
    let mut w = obs::json::JsonWriter::new();
    w.begin_obj();
    w.field_str("error", "server overloaded");
    w.field_str("category", "overload");
    w.field_str("reason", reason);
    w.field_u64("queue_depth", st.queue_len.load(Ordering::Relaxed));
    w.field_u64("queue_cap", st.opts.queue_depth as u64);
    w.field_u64("inflight", st.analysis_inflight.load(Ordering::Relaxed));
    w.field_u64("shed_total", st.sheds.load(Ordering::Relaxed));
    w.end_obj();
    respond("503 Service Unavailable", "application/json", &w.finish())
}

/// A small structured error body: `{"error": ..., "category": ...}`.
fn error_body(msg: &str, category: &str) -> String {
    let mut w = obs::json::JsonWriter::new();
    w.begin_obj();
    w.field_str("error", msg);
    w.field_str("category", category);
    w.end_obj();
    w.finish()
}

/// Readiness decision for `/healthz`: `ok` while work can be admitted;
/// otherwise a JSON body a load balancer (or operator) can read the
/// saturation off of.
fn readiness(st: &State) -> (bool, String) {
    let queue_len = st.queue_len.load(Ordering::Relaxed);
    let draining = st.draining.load(Ordering::Relaxed);
    let saturated = queue_len >= st.opts.queue_depth as u64;
    if !draining && !saturated {
        return (true, "ok\n".to_string());
    }
    let mut w = obs::json::JsonWriter::new();
    w.begin_obj();
    w.field_str("status", if draining { "draining" } else { "overloaded" });
    w.field_u64("queue_depth", queue_len);
    w.field_u64("queue_cap", st.opts.queue_depth as u64);
    w.field_u64("inflight", st.analysis_inflight.load(Ordering::Relaxed));
    w.field_u64("connections", st.connections.load(Ordering::Relaxed));
    w.field_u64("shed_total", st.sheds.load(Ordering::Relaxed));
    // SLO detail: which objectives are burning while the instance is
    // unready, so an operator can tell saturation from a budget incident.
    w.key("slo");
    w.begin_arr();
    for s in &st.lock(&st.series).statuses {
        s.write_json(&mut w);
    }
    w.end_arr();
    w.end_obj();
    (false, w.finish())
}

/// Concatenate the flight buffer's events, oldest request first. Events
/// carry absolute timestamps from a shared origin, so the concatenation
/// renders as one coherent Chrome trace.
fn buffered_events(st: &State) -> Vec<obs::timeline::Event> {
    let flight = st.lock(&st.flight);
    flight
        .iter()
        .flat_map(|r| r.events.iter().copied())
        .collect()
}

/// Chrome trace-event JSON of the current flight buffer, for
/// `/debug/timeline`.
fn render_timeline(st: &State) -> String {
    obs::chrome::write_chrome_trace(&buffered_events(st))
}

/// Index of the retained forensic records for `GET /debug/requests`:
/// newest last, one summary line per record, plus the buffer's capacity
/// and how many records eviction has sacrificed so far.
fn render_requests_index(st: &State) -> String {
    let mut w = obs::json::JsonWriter::new();
    w.begin_obj();
    w.key("retained");
    w.begin_arr();
    {
        let flight = st.lock(&st.flight);
        for r in flight.iter() {
            w.begin_obj();
            w.field_str("req_id", &format!("{:016x}", r.req_id));
            w.field_str("path", &r.path);
            w.field_str("endpoint", r.endpoint);
            w.field_str("outcome", r.outcome);
            w.key("anomalies");
            w.begin_arr();
            for a in &r.anomalies {
                w.str_val(a);
            }
            w.end_arr();
            w.field_u64("latency_ns", r.latency_ns);
            w.end_obj();
        }
    }
    w.end_arr();
    w.field_u64("capacity", st.opts.flight_capacity.max(1) as u64);
    w.field_u64("evictions", st.flight_evictions.load(Ordering::Relaxed));
    w.end_obj();
    w.finish()
}

/// The `metadis.request.v1` bundle for one retained request id, or `None`
/// when nothing with that id is retained. When a client reused one id
/// across requests, the newest record wins (it is the one the client's
/// latest response pointed at).
fn render_request_bundle(st: &State, rid: RequestId) -> Option<String> {
    let rec = {
        let flight = st.lock(&st.flight);
        flight.iter().rev().find(|r| r.req_id == rid.raw()).cloned()
    }?;
    Some(write_request_bundle(&rec))
}

/// Serialize one [`RequestRecord`] as a `metadis.request.v1` document —
/// the per-request forensic bundle: identity and outcome, a trace summary
/// (event/span counts, request wall span), the full timeline slice as an
/// embedded Chrome trace, and the correlated `metadis.log.v2` lines
/// spliced verbatim. Pure in the record, so the encoding is golden-pinned.
pub fn write_request_bundle(rec: &RequestRecord) -> String {
    let mut w = obs::json::JsonWriter::new();
    w.begin_obj();
    w.field_str("schema", REQUEST_SCHEMA);
    w.field_str("req_id", &format!("{:016x}", rec.req_id));
    w.field_str("path", &rec.path);
    w.field_str("endpoint", rec.endpoint);
    w.field_str("outcome", rec.outcome);
    w.key("anomalies");
    w.begin_arr();
    for a in &rec.anomalies {
        w.str_val(a);
    }
    w.end_arr();
    w.field_u64("latency_ns", rec.latency_ns);
    w.field_u64("instructions", rec.instructions);
    w.field_u64("degradations", rec.degradations);
    w.key("trace");
    w.begin_obj();
    w.field_u64("events", rec.events.len() as u64);
    w.field_u64(
        "spans",
        rec.events
            .iter()
            .filter(|e| e.kind == obs::timeline::EventKind::Begin)
            .count() as u64,
    );
    let first = rec.events.iter().map(|e| e.ts_ns).min().unwrap_or(0);
    let last = rec.events.iter().map(|e| e.ts_ns).max().unwrap_or(0);
    w.field_u64("wall_ns", last.saturating_sub(first));
    w.end_obj();
    w.key("timeline");
    w.raw_val(&obs::chrome::write_chrome_trace(&rec.events));
    w.key("logs");
    w.begin_arr();
    for line in &rec.logs {
        w.raw_val(line);
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

fn render_prometheus(st: &State, openmetrics: bool) -> String {
    let mut out = String::with_capacity(4096);
    // Per-endpoint request counter: every answered request, labeled by
    // what it hit ("batch" = the serve command's stdin/file/watch path).
    family_head(
        &mut out,
        "metadis_requests_total",
        "counter",
        "Requests answered, by endpoint.",
        openmetrics,
    );
    for (i, ep) in ENDPOINTS.iter().enumerate() {
        out.push_str(&format!(
            "metadis_requests_total{{endpoint=\"{ep}\"}} {}\n",
            st.endpoint_requests[i].load(Ordering::Relaxed)
        ));
    }
    let mut metric = |name: &str, kind: &str, help: &str, value: u64| {
        family_head(&mut out, name, kind, help, openmetrics);
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    };
    metric(
        "metadis_request_errors_total",
        "counter",
        "Requests that failed before analysis (unreadable or unparsable input).",
        st.errors.load(Ordering::Relaxed),
    );
    metric(
        "metadis_requests_shed_total",
        "counter",
        "Requests shed by admission control (queue full, connection cap, deadline, draining).",
        st.sheds.load(Ordering::Relaxed),
    );
    metric(
        "metadis_requests_shed_queue_total",
        "counter",
        "Requests shed because the admission queue was full.",
        st.shed_queue.load(Ordering::Relaxed),
    );
    metric(
        "metadis_requests_shed_deadline_total",
        "counter",
        "Requests shed because the client deadline was spent before analysis.",
        st.shed_deadline.load(Ordering::Relaxed),
    );
    metric(
        "metadis_requests_shed_connections_total",
        "counter",
        "Connections refused at the connection cap.",
        st.shed_connections.load(Ordering::Relaxed),
    );
    metric(
        "metadis_http_bad_requests_total",
        "counter",
        "Malformed or oversized HTTP requests rejected by the framing layer.",
        st.bad_requests.load(Ordering::Relaxed),
    );
    metric(
        "metadis_client_disconnects_total",
        "counter",
        "Clients that disconnected before their request completed.",
        st.disconnects.load(Ordering::Relaxed),
    );
    metric(
        "metadis_connections",
        "gauge",
        "Client connections currently held by the reactor.",
        st.connections.load(Ordering::Relaxed),
    );
    metric(
        "metadis_queue_depth",
        "gauge",
        "Admitted requests currently waiting for a worker.",
        st.queue_len.load(Ordering::Relaxed),
    );
    metric(
        "metadis_analysis_inflight",
        "gauge",
        "Requests currently being analyzed by the worker pool.",
        st.analysis_inflight.load(Ordering::Relaxed),
    );
    metric(
        "metadis_text_bytes_total",
        "counter",
        "Text bytes disassembled across all requests.",
        st.text_bytes.load(Ordering::Relaxed),
    );
    metric(
        "metadis_instructions_total",
        "counter",
        "Instructions accepted across all requests.",
        st.instructions.load(Ordering::Relaxed),
    );
    metric(
        "metadis_pipeline_wall_ns_total",
        "counter",
        "Pipeline wall time across all requests, nanoseconds.",
        st.wall_ns.load(Ordering::Relaxed),
    );
    metric(
        "metadis_degradations_total",
        "counter",
        "Budget hits recorded across all requests.",
        st.degradations.load(Ordering::Relaxed),
    );
    metric(
        "metadis_alloc_bytes_total",
        "counter",
        "Heap bytes allocated by requests (0 unless allocation accounting is active).",
        st.alloc_bytes.load(Ordering::Relaxed),
    );
    metric(
        "metadis_alloc_peak_bytes",
        "gauge",
        "Largest single-request live-heap high-water mark, bytes.",
        st.alloc_peak.load(Ordering::Relaxed),
    );
    metric(
        "metadis_log_warns_total",
        "counter",
        "Warn-level log records since process start.",
        obs::log::warn_count(),
    );
    metric(
        "metadis_log_errors_total",
        "counter",
        "Error-level log records since process start.",
        obs::log::error_count(),
    );
    metric(
        "metadis_http_requests_total",
        "counter",
        "HTTP requests answered by the exposition endpoint.",
        st.http_requests.load(Ordering::Relaxed),
    );
    metric(
        "metadis_lock_poisoned_total",
        "counter",
        "Reactor-shared mutexes recovered from poisoning (a worker panicked while holding one).",
        st.lock_poisoned.load(Ordering::Relaxed),
    );
    metric(
        "metadis_flight_occupancy",
        "gauge",
        "Forensic request records currently retained in the flight buffer.",
        st.lock(&st.flight).len() as u64,
    );
    metric(
        "metadis_flight_capacity",
        "gauge",
        "Configured flight-buffer capacity (--flight-capacity).",
        st.opts.flight_capacity.max(1) as u64,
    );
    metric(
        "metadis_flight_evictions_total",
        "counter",
        "Request records evicted from the flight buffer (routine records first).",
        st.flight_evictions.load(Ordering::Relaxed),
    );
    metric("metadis_up", "gauge", "1 while the server is running.", 1);
    // Build identity: lets scrapes correlate metric shape with the
    // running build and its schema tags. (Direct pushes from here on —
    // after the `metric` closure's last call so they can reuse `out`.)
    out.push_str(&format!(
        "# HELP metadis_build_info Build and schema identity; value is always 1.\n\
         # TYPE metadis_build_info gauge\n\
         metadis_build_info{{version=\"{}\",trace_schema=\"{}\",log_schema=\"{}\"}} 1\n",
        env!("CARGO_PKG_VERSION"),
        disasm_core::trace::SCHEMA,
        obs::log::SCHEMA,
    ));
    // SLO burn gauges from the latest sampler evaluation. With the
    // sampler disabled (or before its first tick) the families are
    // declared but carry no series.
    let statuses = st.lock(&st.series).statuses.clone();
    out.push_str(
        "# HELP metadis_slo_burn_rate Error-budget burn rate per objective and window; 1.0 burns exactly the budget.\n# TYPE metadis_slo_burn_rate gauge\n",
    );
    for s in &statuses {
        for (window, burn) in [("fast", s.burn_fast), ("slow", s.burn_slow)] {
            out.push_str(&format!(
                "metadis_slo_burn_rate{{objective=\"{}\",window=\"{window}\"}} {burn}\n",
                s.objective
            ));
        }
    }
    out.push_str(
        "# HELP metadis_slo_breached 1 while both burn windows of the objective exceed the threshold.\n# TYPE metadis_slo_breached gauge\n",
    );
    for s in &statuses {
        out.push_str(&format!(
            "metadis_slo_breached{{objective=\"{}\"}} {}\n",
            s.objective,
            u64::from(s.breached)
        ));
    }
    // Latency summaries: bucket-resolution quantiles from the log2
    // histograms, plus the exact sum/count pairs scrapers use to derive
    // rates and means. The request summary is labeled by endpoint.
    out.push_str(
        "# HELP metadis_request_latency_ns Per-request service latency by endpoint (analysis endpoints: load + pipeline), nanoseconds.\n# TYPE metadis_request_latency_ns summary\n",
    );
    for (i, ep) in ENDPOINTS.iter().enumerate() {
        let s = st.endpoint_latency[i].summary();
        for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
            out.push_str(&format!(
                "metadis_request_latency_ns{{endpoint=\"{ep}\",quantile=\"{label}\"}} {}\n",
                s.quantile(q)
            ));
        }
        out.push_str(&format!(
            "metadis_request_latency_ns_sum{{endpoint=\"{ep}\"}} {}\n",
            s.sum
        ));
        out.push_str(&format!(
            "metadis_request_latency_ns_count{{endpoint=\"{ep}\"}} {}\n",
            s.count
        ));
    }
    let s = st.queue_wait.summary();
    out.push_str(
        "# HELP metadis_queue_wait_ns Time admitted requests spent queued before a worker started them, nanoseconds.\n# TYPE metadis_queue_wait_ns summary\n",
    );
    for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
        out.push_str(&format!(
            "metadis_queue_wait_ns{{quantile=\"{label}\"}} {}\n",
            s.quantile(q)
        ));
    }
    out.push_str(&format!("metadis_queue_wait_ns_sum {}\n", s.sum));
    out.push_str(&format!("metadis_queue_wait_ns_count {}\n", s.count));
    // Full log2 histograms. Only the OpenMetrics exposition may carry
    // exemplars — each populated bucket line then gets a
    // `# {req_id="…"} value` suffix (the last correlated request that
    // landed there) so a dashboard can jump from a latency spike straight
    // to `/debug/requests/<id>`. The legacy text format has no exemplar
    // grammar; emitting the suffix there breaks the whole scrape.
    write_histogram(
        &mut out,
        "metadis_request_latency_histogram_ns",
        "Per-request service latency, log2 buckets with request-id exemplars.",
        &st.latency,
        openmetrics,
    );
    write_histogram(
        &mut out,
        "metadis_queue_wait_histogram_ns",
        "Queue wait before a worker started the request, log2 buckets with request-id exemplars.",
        &st.queue_wait,
        openmetrics,
    );
    if openmetrics {
        // OpenMetrics requires the exposition to end with an EOF marker.
        out.push_str("# EOF\n");
    }
    out
}

/// `text/plain; version=0.0.4` content type of the legacy Prometheus text
/// exposition: no exemplars, no `# EOF` trailer.
const PROM_TEXT_CONTENT_TYPE: &str = "text/plain; version=0.0.4";
/// OpenMetrics exposition content type: histogram buckets carry exemplar
/// suffixes and the body ends with `# EOF`.
const OPENMETRICS_CONTENT_TYPE: &str = "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// Whether an `Accept` header asks for the OpenMetrics exposition.
/// Prometheus ≥ 2.5 scrapers (and [`http::fetch`]) send
/// `application/openmetrics-text` with the legacy type as a fallback;
/// a bare `curl` sends nothing and gets the legacy text.
fn accepts_openmetrics(accept: Option<&str>) -> bool {
    accept.is_some_and(|a| {
        a.to_ascii_lowercase()
            .contains("application/openmetrics-text")
    })
}

/// Write one family's `# HELP` / `# TYPE` head. OpenMetrics names a
/// counter family *without* the `_total` suffix its sample lines carry
/// (`# TYPE x counter` + `x_total … 1`); the legacy format declares the
/// sample name verbatim.
fn family_head(out: &mut String, name: &str, kind: &str, help: &str, openmetrics: bool) {
    let declared = if openmetrics && kind == "counter" {
        name.strip_suffix("_total").unwrap_or(name)
    } else {
        name
    };
    out.push_str(&format!(
        "# HELP {declared} {help}\n# TYPE {declared} {kind}\n"
    ));
}

/// Render one histogram family: cumulative `_bucket{le=…}` lines (sparse
/// — only populated buckets plus `+Inf`), `_sum`, `_count`. In OpenMetrics
/// mode every bucket that has recorded a correlated request gets an
/// exemplar suffix.
fn write_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    h: &obs::Histogram,
    openmetrics: bool,
) {
    let s = h.summary();
    let exemplars = h.exemplars();
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for &(b, c) in &s.buckets {
        cumulative += c;
        let le = obs::metrics::bucket_bound(b as usize);
        let suffix = if openmetrics {
            exemplars
                .iter()
                .find(|&&(eb, _, _)| eb == b)
                .map(|&(_, tag, v)| format!(" # {{req_id=\"{tag:016x}\"}} {v}"))
                .unwrap_or_default()
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{name}_bucket{{le=\"{le}\"}} {cumulative}{suffix}\n"
        ));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", s.count));
    out.push_str(&format!("{name}_sum {}\n", s.sum));
    out.push_str(&format!("{name}_count {}\n", s.count));
}

/// Fetch `path` from the server at `addr` over a fresh connection and
/// return the response body. Errors on connection failure or a non-200
/// status line. Thin alias over [`http::fetch`] — `scrape` and `top`
/// share that one client path.
pub fn scrape(addr: &str, path: &str) -> std::io::Result<String> {
    http::fetch(addr, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_elf(dir: &std::path::Path, name: &str, seed: u64) -> String {
        std::fs::create_dir_all(dir).unwrap();
        let path = dir.join(name);
        let workload = bingen::Workload::generate(&bingen::GenConfig::small(seed));
        std::fs::write(&path, workload.to_elf().to_bytes()).unwrap();
        path.to_str().unwrap().to_string()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("metadis-serve-unit-{tag}-{}", std::process::id()))
    }

    #[test]
    fn metrics_render_all_families() {
        let st = State::default();
        st.endpoint_requests[EP_BATCH].store(3, Ordering::Relaxed);
        st.alloc_peak.store(4096, Ordering::Relaxed);
        st.sheds.store(2, Ordering::Relaxed);
        let text = render_prometheus(&st, false);
        for family in [
            "metadis_requests_total{endpoint=\"batch\"} 3",
            "metadis_requests_total{endpoint=\"/analyze\"} 0",
            "metadis_requests_total{endpoint=\"/metrics\"} 0",
            "metadis_request_errors_total 0",
            "metadis_requests_shed_total 2",
            "metadis_requests_shed_queue_total 0",
            "metadis_requests_shed_deadline_total 0",
            "metadis_requests_shed_connections_total 0",
            "metadis_http_bad_requests_total 0",
            "metadis_client_disconnects_total 0",
            "metadis_connections 0",
            "metadis_queue_depth 0",
            "metadis_analysis_inflight 0",
            "metadis_text_bytes_total",
            "metadis_instructions_total",
            "metadis_pipeline_wall_ns_total",
            "metadis_degradations_total",
            "metadis_alloc_bytes_total",
            "metadis_alloc_peak_bytes 4096",
            "metadis_build_info{version=\"",
            "trace_schema=\"metadis.trace.v6\"",
            "log_schema=\"metadis.log.v2\"} 1",
            "metadis_lock_poisoned_total 0",
            "metadis_flight_occupancy 0",
            "metadis_flight_capacity 8",
            "metadis_flight_evictions_total 0",
            "# TYPE metadis_request_latency_histogram_ns histogram",
            "metadis_request_latency_histogram_ns_bucket{le=\"+Inf\"} 0",
            "# TYPE metadis_queue_wait_histogram_ns histogram",
            "metadis_queue_wait_histogram_ns_count 0",
            "# TYPE metadis_slo_burn_rate gauge",
            "# TYPE metadis_slo_breached gauge",
            "metadis_request_latency_ns{endpoint=\"/analyze\",quantile=\"0.5\"} 0",
            "metadis_request_latency_ns{endpoint=\"batch\",quantile=\"0.99\"} 0",
            "metadis_request_latency_ns_sum{endpoint=\"/analyze\"} 0",
            "metadis_request_latency_ns_count{endpoint=\"batch\"} 0",
            "metadis_queue_wait_ns{quantile=\"0.5\"} 0",
            "metadis_queue_wait_ns_sum 0",
            "metadis_log_warns_total",
            "metadis_log_errors_total",
            "metadis_up 1",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
        // every family carries HELP and TYPE lines
        assert_eq!(
            text.matches("# HELP ").count(),
            text.matches("# TYPE ").count()
        );
    }

    #[test]
    fn latency_summary_reports_quantiles() {
        let st = State::default();
        for v in [100u64, 200, 300, 400, 100_000] {
            st.endpoint_latency[EP_BATCH].record(v);
        }
        let text = render_prometheus(&st, false);
        let line = |needle: &str| {
            text.lines()
                .find(|l| l.starts_with(needle))
                .unwrap_or_else(|| panic!("no line starting with {needle} in:\n{text}"))
                .to_string()
        };
        assert_eq!(
            line("metadis_request_latency_ns_count{endpoint=\"batch\"}"),
            "metadis_request_latency_ns_count{endpoint=\"batch\"} 5"
        );
        assert_eq!(
            line("metadis_request_latency_ns_sum{endpoint=\"batch\"}"),
            "metadis_request_latency_ns_sum{endpoint=\"batch\"} 101000"
        );
        // log2 buckets: p50 lands in the bucket of 300 (256..511), p99 in
        // the bucket of the outlier, clamped to the exact max.
        assert_eq!(
            line("metadis_request_latency_ns{endpoint=\"batch\",quantile=\"0.5\"}"),
            "metadis_request_latency_ns{endpoint=\"batch\",quantile=\"0.5\"} 511"
        );
        assert_eq!(
            line("metadis_request_latency_ns{endpoint=\"batch\",quantile=\"0.99\"}"),
            "metadis_request_latency_ns{endpoint=\"batch\",quantile=\"0.99\"} 100000"
        );
        // untouched endpoints stay declared but empty
        assert_eq!(
            line("metadis_request_latency_ns_count{endpoint=\"/analyze\"}"),
            "metadis_request_latency_ns_count{endpoint=\"/analyze\"} 0"
        );
        assert!(text.contains("# TYPE metadis_request_latency_ns summary"));
    }

    #[test]
    fn endpoint_labels_cover_every_route() {
        assert_eq!(endpoint_index("/analyze"), EP_ANALYZE);
        assert_eq!(endpoint_index("/metrics"), 2);
        assert_eq!(
            ENDPOINTS[endpoint_index("/debug/metrics/history")],
            "/debug/metrics/history"
        );
        assert_eq!(
            ENDPOINTS[endpoint_index("/debug/requests")],
            "/debug/requests"
        );
        // per-id bundle fetches account under the same label
        assert_eq!(
            ENDPOINTS[endpoint_index("/debug/requests/00000000000004d2")],
            "/debug/requests"
        );
        assert_eq!(ENDPOINTS[endpoint_index("/nope")], "other");
        // a merely-prefixed path is a 404 and must NOT inflate the
        // /debug/requests counters
        assert_eq!(ENDPOINTS[endpoint_index("/debug/requestsfoo")], "other");
    }

    #[test]
    fn metrics_content_negotiation_gates_exemplars() {
        let st = State::default();
        let rid = 0x1badb002deadc0deu64;
        st.latency.record_tagged(1_000, rid);

        // Legacy version=0.0.4 text: no exemplar suffixes (the legacy
        // parser reads "# {...}" as a parse error), no EOF marker, and
        // counter families declared under their sample name.
        let legacy = render_prometheus(&st, false);
        assert!(!legacy.contains("# {req_id="), "{legacy}");
        assert!(!legacy.contains("# EOF"), "{legacy}");
        assert!(
            legacy.contains("# TYPE metadis_requests_total counter"),
            "{legacy}"
        );

        // OpenMetrics: exemplars on populated buckets, counter families
        // declared without the _total suffix their samples carry, and a
        // mandatory trailing EOF marker.
        let om = render_prometheus(&st, true);
        assert!(
            om.contains(&format!("# {{req_id=\"{rid:016x}\"}} 1000")),
            "{om}"
        );
        assert!(om.ends_with("# EOF\n"), "{om}");
        assert!(om.contains("# TYPE metadis_requests counter"), "{om}");
        assert!(!om.contains("# TYPE metadis_requests_total"), "{om}");
        // sample lines keep the _total name in both formats
        for text in [&legacy, &om] {
            assert!(
                text.contains("metadis_requests_total{endpoint=\"/analyze\"} 0"),
                "{text}"
            );
        }
        // gauges and summaries are declared identically in both formats
        for text in [&legacy, &om] {
            assert!(text.contains("# TYPE metadis_queue_depth gauge"), "{text}");
            assert!(
                text.contains("# TYPE metadis_request_latency_ns summary"),
                "{text}"
            );
        }
    }

    #[test]
    fn accept_header_selects_the_openmetrics_exposition() {
        assert!(!accepts_openmetrics(None));
        assert!(!accepts_openmetrics(Some("text/plain; version=0.0.4")));
        assert!(!accepts_openmetrics(Some("*/*")));
        assert!(accepts_openmetrics(Some(
            "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5"
        )));
        assert!(accepts_openmetrics(Some("Application/OpenMetrics-Text")));
    }

    #[test]
    fn sampler_builds_series_and_evaluates_slos() {
        let st = State::default();
        st.requests.store(10, Ordering::Relaxed);
        st.latency.record(1_000_000);
        sample_series(&st);
        st.requests.store(20, Ordering::Relaxed);
        st.sheds.store(0, Ordering::Relaxed);
        sample_series(&st);
        {
            let tr = st.series.lock().unwrap();
            assert_eq!(tr.ring.len(), 2);
            let latest = tr.ring.latest().unwrap();
            assert_eq!(latest.counter("requests"), 20);
            assert!(latest.summary("latency_ns").is_some());
            // statuses attached to the sample and cached for /metrics
            assert_eq!(latest.slo.len(), 2);
            assert_eq!(tr.statuses.len(), 2);
            assert!(tr.statuses.iter().all(|s| !s.breached));
        }
        // the history endpoint renders the ring as series.v1
        let body = render_history(&st);
        let doc = obs::json::parse(&body).unwrap();
        let samples = obs::series::samples_from_json(&doc).expect("valid series.v1");
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[1].counter("requests"), 20);
        // and the gauges show up in the exposition
        let metrics = render_prometheus(&st, false);
        assert!(
            metrics.contains("metadis_slo_burn_rate{objective=\"availability\",window=\"fast\"} 0"),
            "{metrics}"
        );
        assert!(
            metrics.contains("metadis_slo_breached{objective=\"latency_p99\"} 0"),
            "{metrics}"
        );
    }

    #[test]
    fn flight_buffer_is_bounded_and_serves_debug_timeline() {
        let server = Server::start("127.0.0.1:0").unwrap();
        // Force more requests than the buffer holds; every one fails to
        // load (all anomalous), so eviction falls back to oldest-first
        // and still records a serve.request span per request.
        for i in 0..(FLIGHT_CAPACITY + 3) {
            let _ = server.process_path(&format!("/nonexistent/f{i}.elf"), &Config::default());
        }
        {
            let flight = server.state.lock(&server.state.flight);
            assert_eq!(flight.len(), FLIGHT_CAPACITY);
            // oldest entries fell off the front
            assert!(flight.front().unwrap().path.contains("f3.elf"));
            for rec in flight.iter() {
                assert!(!rec.events.is_empty());
                assert_eq!(rec.outcome, "error");
                assert!(rec.anomalies.contains(&"error"), "{:?}", rec.anomalies);
            }
        }
        assert_eq!(
            server.state.flight_evictions.load(Ordering::Relaxed),
            3,
            "three over capacity, three evictions"
        );
        let addr = server.addr().to_string();
        let body = scrape(&addr, "/debug/timeline").unwrap();
        let json = obs::json::parse(&body).expect("timeline is valid JSON");
        let events = json.get("traceEvents").unwrap().as_arr().unwrap();
        // one B and one E per buffered request, plus lane metadata
        let begins = events
            .iter()
            .filter(|e| e.path("ph").and_then(|p| p.as_str()) == Some("B"))
            .count();
        assert_eq!(begins, FLIGHT_CAPACITY);
        server.shutdown();
    }

    #[test]
    fn tail_retention_keeps_anomalies_over_routine_requests() {
        let dir = tmpdir("retain");
        let elf = write_elf(&dir, "ok.elf", 41);
        let opts = ServeOptions {
            flight_capacity: 3,
            ..ServeOptions::default()
        };
        let server = Server::start_with("127.0.0.1:0", opts, Config::default()).unwrap();
        // three routine requests fill the buffer...
        for _ in 0..3 {
            server.process_path(&elf, &Config::default()).unwrap();
        }
        // ...then more anomalies than capacity: each evicts a routine
        // record first, then the oldest anomaly once none remain.
        for i in 0..4 {
            let _ = server.process_path(&format!("/nonexistent/e{i}.elf"), &Config::default());
        }
        {
            let flight = server.state.lock(&server.state.flight);
            assert_eq!(flight.len(), 3);
            assert!(
                flight.iter().all(|r| r.anomalies.contains(&"error")),
                "anomalies outlive routine records: {:?}",
                flight.iter().map(|r| r.path.clone()).collect::<Vec<_>>()
            );
            // oldest anomaly was sacrificed only after every routine one
            assert!(flight.front().unwrap().path.contains("e1.elf"));
        }
        assert_eq!(server.state.flight_evictions.load(Ordering::Relaxed), 4);
        let metrics = server.render_metrics();
        assert!(metrics.contains("metadis_flight_occupancy 3"), "{metrics}");
        assert!(metrics.contains("metadis_flight_capacity 3"), "{metrics}");
        assert!(
            metrics.contains("metadis_flight_evictions_total 4"),
            "{metrics}"
        );
        server.shutdown();
    }

    #[test]
    fn request_ids_echo_and_resolve_to_bundles() {
        // the log slice in a bundle comes from the global log ring, which
        // only captures when a level is set (the serve CLI does this; a
        // bare Server::start does not)
        if obs::log::level().is_none() {
            obs::log::set_level(Some(obs::log::Level::Info));
        }
        let server = Server::start("127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        // an error request is retained; its response header names the id.
        // Concurrent CLI-invocation tests reset the global logger, which
        // can wipe a request's log slice mid-capture — issue a fresh
        // request until one lands with its slice intact.
        let mut picked = None;
        for _ in 0..32 {
            obs::log::set_level(Some(obs::log::Level::Info));
            let (status, headers, _body) =
                http::request_full(&addr, "GET", "/analyze?path=/nonexistent/zz.elf", None, &[])
                    .unwrap();
            assert_eq!(status, 422);
            let rid = headers
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case("x-metadis-request-id"))
                .map(|(_, v)| v.clone())
                .expect("every response carries X-Metadis-Request-Id");
            assert_eq!(rid.len(), 16, "{rid}");
            let bundle = scrape(&addr, &format!("/debug/requests/{rid}")).unwrap();
            let doc = obs::json::parse(&bundle).expect("bundle is valid JSON");
            let has_logs = doc
                .path("logs")
                .and_then(|v| v.as_arr())
                .is_some_and(|l| !l.is_empty());
            if has_logs {
                picked = Some((rid, bundle));
                break;
            }
        }
        let (rid, bundle) = picked.expect("a request with an intact log slice");
        // the index lists it...
        let index = scrape(&addr, "/debug/requests").unwrap();
        assert!(index.contains(&rid), "{index}");
        let doc = obs::json::parse(&index).unwrap();
        assert_eq!(doc.path("capacity").and_then(|v| v.as_u64()), Some(8));
        // ...and the per-id bundle carries the same id, the timeline, and
        // the correlated log slice
        let doc = obs::json::parse(&bundle).expect("bundle is valid JSON");
        assert_eq!(
            doc.path("schema").and_then(|v| v.as_str()),
            Some(REQUEST_SCHEMA)
        );
        assert_eq!(doc.path("req_id").and_then(|v| v.as_str()), Some(&rid[..]));
        assert_eq!(doc.path("outcome").and_then(|v| v.as_str()), Some("error"));
        assert!(!doc
            .path("timeline.traceEvents")
            .and_then(|v| v.as_arr())
            .unwrap()
            .is_empty());
        let logs = doc.path("logs").and_then(|v| v.as_arr()).unwrap();
        assert!(
            logs.iter().any(|l| {
                l.path("msg").and_then(|m| m.as_str()) == Some("request failed")
                    && l.path("req_id").and_then(|m| m.as_str()) == Some(&rid[..])
            }),
            "{bundle}"
        );
        // an unknown id is a clean 404
        let err = scrape(&addr, "/debug/requests/ffffffffffffffff").unwrap_err();
        assert!(err.to_string().contains("404"), "{err}");
        // a client-supplied id is honored and echoed back verbatim
        let (_, headers, _) = http::request_full(
            &addr,
            "GET",
            "/healthz",
            None,
            &[("X-Metadis-Request-Id", "00c0ffee00c0ffee")],
        )
        .unwrap();
        let echoed = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("x-metadis-request-id"))
            .map(|(_, v)| v.clone());
        assert_eq!(echoed.as_deref(), Some("00c0ffee00c0ffee"));
        server.shutdown();
    }

    #[test]
    fn poisoned_locks_recover_and_count() {
        let st = State::default();
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = st.lock(&st.flight);
            panic!("poison the flight buffer");
        }));
        assert!(poison.is_err());
        // the next taker recovers instead of propagating the panic
        assert_eq!(st.lock(&st.flight).len(), 0);
        assert_eq!(st.lock_poisoned.load(Ordering::Relaxed), 1);
        let metrics = render_prometheus(&st, false);
        assert!(
            metrics.contains("metadis_lock_poisoned_total 1"),
            "{metrics}"
        );
    }

    #[test]
    fn unknown_path_is_404_and_scrape_reports_it() {
        let server = Server::start("127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        let e = scrape(&addr, "/nope").unwrap_err();
        assert!(e.to_string().contains("404"), "{e}");
        let ok = scrape(&addr, "/healthz").unwrap();
        assert_eq!(ok, "ok\n");
        server.shutdown();
    }

    #[test]
    fn process_batch_returns_per_path_results_in_order() {
        let server = Server::start("127.0.0.1:0").unwrap();
        let cfg = Config {
            threads: 4,
            ..Config::default()
        };
        let paths: Vec<String> = (0..6).map(|i| format!("/nonexistent/b{i}.elf")).collect();
        let results = server.process_batch(&paths, &cfg);
        assert_eq!(results.len(), 6);
        for (i, r) in results.iter().enumerate() {
            let e = r.as_ref().unwrap_err();
            assert!(e.contains(&format!("b{i}.elf")), "{e}");
        }
        assert_eq!(server.errors(), 6);
        assert_eq!(server.requests(), 0);
        server.shutdown();
    }

    #[test]
    fn process_path_errors_count() {
        let server = Server::start("127.0.0.1:0").unwrap();
        let e = server
            .process_path("/nonexistent/x.elf", &Config::default())
            .unwrap_err();
        assert!(e.contains("cannot read"), "{e}");
        assert_eq!(server.errors(), 1);
        assert_eq!(server.requests(), 0);
        server.shutdown();
    }

    #[test]
    fn analyze_over_http_answers_a_json_summary() {
        let dir = tmpdir("analyze");
        let elf = write_elf(&dir, "a.elf", 21);
        let server = Server::start("127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();

        // GET with a query param
        let (status, body) =
            http::request(&addr, "GET", &format!("/analyze?path={elf}"), None).unwrap();
        assert_eq!(status, 200, "{body}");
        let json = obs::json::parse(&body).expect("summary is JSON");
        assert!(json.get("instructions").unwrap().as_u64().unwrap() > 0);
        assert!(json.get("queue_wait_ns").is_some());

        // POST with the path as the body
        let (status, body) = http::request(&addr, "POST", "/analyze", Some(&elf)).unwrap();
        assert_eq!(status, 200, "{body}");

        // a bad path is a structured error, not a hang
        let (status, body) =
            http::request(&addr, "GET", "/analyze?path=/nonexistent/z.elf", None).unwrap();
        assert_eq!(status, 422, "{body}");
        assert!(body.contains(r#""category":"io""#), "{body}");

        // a missing path is a usage error
        let (status, body) = http::request(&addr, "GET", "/analyze", None).unwrap();
        assert_eq!(status, 400, "{body}");
        assert!(body.contains(r#""category":"usage""#), "{body}");

        assert_eq!(server.requests(), 2);
        assert_eq!(server.errors(), 1);
        assert_eq!(server.sheds(), 0);
        server.shutdown();
    }

    #[test]
    fn zero_queue_depth_sheds_and_drives_healthz_unready() {
        let dir = tmpdir("shed");
        let elf = write_elf(&dir, "s.elf", 22);
        let opts = ServeOptions {
            queue_depth: 0,
            drain_ms: 200,
            ..ServeOptions::default()
        };
        let server = Server::start_with("127.0.0.1:0", opts, Config::default()).unwrap();
        let addr = server.addr().to_string();

        // every analysis request sheds with the structured overload body
        let (status, body) =
            http::request(&addr, "GET", &format!("/analyze?path={elf}"), None).unwrap();
        assert_eq!(status, 503, "{body}");
        assert!(body.contains(r#""category":"overload""#), "{body}");
        assert!(body.contains(r#""reason":"queue-full""#), "{body}");
        assert!(body.contains(r#""queue_cap":0"#), "{body}");
        assert_eq!(server.sheds(), 1);

        // readiness reflects the saturation as a 503 with a JSON body
        let (status, body) = http::request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 503, "{body}");
        assert!(body.contains(r#""status":"overloaded""#), "{body}");
        assert!(body.contains(r#""shed_total":1"#), "{body}");

        // the shed shows up in the exposition
        let metrics = server.render_metrics();
        assert!(
            metrics.contains("metadis_requests_shed_total 1"),
            "{metrics}"
        );
        assert!(
            metrics.contains("metadis_requests_shed_queue_total 1"),
            "{metrics}"
        );
        server.shutdown();
    }

    #[test]
    fn malformed_http_is_rejected_with_structured_errors() {
        let server = Server::start("127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();

        let (status, body) = http::request(&addr, "DELETE", "/metrics", None).unwrap();
        assert_eq!(status, 405, "{body}");

        // raw garbage: answered with a 400 (or dropped), never a panic
        {
            let mut s = TcpStream::connect(&addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            s.write_all(b"\x01\x02garbage\r\n\r\n").unwrap();
            let mut resp = String::new();
            let _ = s.read_to_string(&mut resp);
            assert!(resp.is_empty() || resp.contains("400"), "{resp}");
        }
        // the server is still alive and accounting
        assert_eq!(scrape(&addr, "/healthz").unwrap(), "ok\n");
        let metrics = server.render_metrics();
        assert!(
            metrics.contains("metadis_http_bad_requests_total 1"),
            "{metrics}"
        );
        server.shutdown();
    }
}
