//! Batch-service mode: a long-running disassembly worker with a metrics
//! exposition surface.
//!
//! [`Server`] binds a plain `std::net::TcpListener` and answers two HTTP
//! paths from a background thread:
//!
//! * `GET /metrics` — Prometheus text exposition (version 0.0.4) of the
//!   service counters: requests, errors, bytes, instructions, wall time,
//!   degradations, allocation totals, a request-latency summary
//!   (`quantile="0.5"`/`"0.99"` plus `_sum`/`_count`), and the `obs::log`
//!   warn/error counts.
//! * `GET /debug/timeline` — Chrome trace-event JSON of the rolling flight
//!   buffer (the last [`FLIGHT_CAPACITY`] request timelines), loadable in
//!   Perfetto or `chrome://tracing`.
//! * `GET /healthz` — `ok` with status 200 while the server is up.
//!
//! Requests themselves (ELF paths to disassemble) arrive out of band — from
//! stdin, a file, or a watched directory (see the `metadis serve` command) —
//! and are processed via [`Server::process_path`] (one request on the
//! caller's thread) or [`Server::process_batch`] (a batch fanned out over a
//! bounded worker pool, `Config::threads` wide), while the exposition
//! surface stays responsive on its own thread. Per-request observability
//! survives the fan-out: allocation counters are thread-local (each worker
//! measures only its own requests) and log lines are formatted and written
//! atomically, so concurrent requests never interleave within a record.
//! [`scrape`] is the matching client (used by `metadis scrape`): one GET
//! over a fresh connection, body returned as a string.
//!
//! Everything here is standard library only: hand-rolled request-line
//! parsing on the server side, a hand-rolled GET on the client side. The
//! HTTP subset is deliberately minimal (no keep-alive, no chunking) —
//! Prometheus scrapers and `curl` both speak it happily.

use disasm_core::{Config, Disassembler, Image};
use obs::log::Value;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How many request timelines the rolling flight buffer retains. Old
/// entries fall off the front as new requests complete.
pub const FLIGHT_CAPACITY: usize = 8;

/// One request's captured flight-recorder timeline, kept in the rolling
/// buffer for `/debug/timeline` and anomaly dumps.
#[derive(Debug)]
struct FlightRecord {
    path: String,
    events: Vec<obs::timeline::Event>,
}

/// Service counters, shared between the processing thread and the HTTP
/// exposition thread. All relaxed atomics: scrapes may observe a request
/// mid-update, which Prometheus tolerates by design. The flight buffer is
/// the one mutex — touched once per request (push) and once per dump or
/// `/debug/timeline` scrape, never on a hot path.
#[derive(Debug, Default)]
struct State {
    requests: AtomicU64,
    errors: AtomicU64,
    text_bytes: AtomicU64,
    instructions: AtomicU64,
    wall_ns: AtomicU64,
    degradations: AtomicU64,
    alloc_bytes: AtomicU64,
    alloc_peak: AtomicU64,
    http_requests: AtomicU64,
    latency: obs::Histogram,
    flight: Mutex<VecDeque<FlightRecord>>,
    flight_dumps: AtomicU64,
    stop: AtomicBool,
}

/// Outcome of one processed request, for the serve loop's own accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestSummary {
    /// Text bytes disassembled.
    pub text_bytes: u64,
    /// Accepted instructions.
    pub instructions: u64,
    /// Wall time of the pipeline, nanoseconds.
    pub wall_ns: u64,
    /// Budget hits recorded by the run.
    pub degradations: u64,
}

/// The batch-service server: a bound listener plus the shared counters.
/// Dropping the server (or calling [`Server::shutdown`]) stops the
/// exposition thread.
#[derive(Debug)]
pub struct Server {
    state: Arc<State>,
    addr: SocketAddr,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// answering `/metrics` and `/healthz` on a background thread.
    pub fn start(addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // The flight recorder stays on for the life of the service: it is
        // bounded (per-thread ring) and cheap, and it is what feeds the
        // rolling per-request buffer behind `/debug/timeline`.
        obs::timeline::set_enabled(true);
        // Nonblocking accept + short sleep so the thread notices `stop`
        // promptly without needing a wakeup connection.
        listener.set_nonblocking(true)?;
        let state = Arc::new(State::default());
        let thread_state = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            while !thread_state.stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = handle_connection(stream, &thread_state);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        obs::log::info(
            "serve",
            "listening",
            &[("addr", Value::Str(addr.to_string()))],
        );
        Ok(Server {
            state,
            addr,
            handle: Some(handle),
        })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests processed so far.
    pub fn requests(&self) -> u64 {
        self.state.requests.load(Ordering::Relaxed)
    }

    /// Requests that failed (unreadable/unparsable input).
    pub fn errors(&self) -> u64 {
        self.state.errors.load(Ordering::Relaxed)
    }

    /// Disassemble the ELF at `path` with `cfg`, folding the run into the
    /// service counters and emitting request-scoped log events.
    pub fn process_path(&self, path: &str, cfg: &Config) -> Result<RequestSummary, String> {
        obs::log::info(
            "serve",
            "request begin",
            &[("path", Value::Str(path.to_string()))],
        );
        let started = std::time::Instant::now();
        let tl_mark = obs::timeline::mark();
        obs::timeline::begin("serve.request");
        let image = match load_image(path) {
            Ok(img) => img,
            Err(e) => {
                obs::timeline::end("serve.request");
                self.state
                    .latency
                    .record(started.elapsed().as_nanos() as u64);
                self.state.errors.fetch_add(1, Ordering::Relaxed);
                self.capture_flight(path, tl_mark);
                obs::log::error(
                    "serve",
                    "request failed",
                    &[
                        ("path", Value::Str(path.to_string())),
                        ("error", Value::Str(e.clone())),
                    ],
                );
                self.dump_flight("error", path);
                return Err(e);
            }
        };
        let d = Disassembler::new(cfg.clone()).disassemble(&image);
        let summary = RequestSummary {
            text_bytes: d.trace.text_bytes,
            instructions: d.inst_starts.len() as u64,
            wall_ns: d.trace.total_wall_ns,
            degradations: d.trace.degradations.len() as u64,
        };
        let st = &self.state;
        st.requests.fetch_add(1, Ordering::Relaxed);
        st.text_bytes
            .fetch_add(summary.text_bytes, Ordering::Relaxed);
        st.instructions
            .fetch_add(summary.instructions, Ordering::Relaxed);
        st.wall_ns.fetch_add(summary.wall_ns, Ordering::Relaxed);
        st.degradations
            .fetch_add(summary.degradations, Ordering::Relaxed);
        st.alloc_bytes
            .fetch_add(d.trace.alloc_bytes, Ordering::Relaxed);
        st.alloc_peak
            .fetch_max(d.trace.alloc_peak, Ordering::Relaxed);
        obs::timeline::end("serve.request");
        st.latency.record(started.elapsed().as_nanos() as u64);
        self.capture_flight(path, tl_mark);
        obs::log::info(
            "serve",
            "request done",
            &[
                ("path", Value::Str(path.to_string())),
                ("instructions", summary.instructions.into()),
                ("wall_ns", summary.wall_ns.into()),
                ("degradations", summary.degradations.into()),
            ],
        );
        if summary.degradations > 0 {
            self.dump_flight("degradation", path);
        }
        Ok(summary)
    }

    /// Drain the calling thread's timeline events since `mark` into the
    /// rolling flight buffer. In batch mode each worker drains its own
    /// ring, so requests never mix events; the shard bookkeeping events
    /// recorded by `par::run_jobs` before the mark stay in the ring for
    /// the batch-level trace.
    fn capture_flight(&self, path: &str, mark: obs::timeline::Mark) {
        let events = obs::timeline::take_since(mark);
        if events.is_empty() {
            return;
        }
        let mut flight = self.state.flight.lock().unwrap();
        while flight.len() >= FLIGHT_CAPACITY {
            flight.pop_front();
        }
        flight.push_back(FlightRecord {
            path: path.to_string(),
            events,
        });
    }

    /// Anomaly hook: write the buffered request timelines to disk as one
    /// Chrome trace and log where it went. Called on request errors and on
    /// degraded (budget-hit or deadline-clipped) runs; failures to write
    /// are logged, never propagated — the dump is diagnostic, not part of
    /// the request.
    fn dump_flight(&self, reason: &str, path: &str) {
        let (events, requests) = {
            let flight = self.state.flight.lock().unwrap();
            let events: Vec<obs::timeline::Event> = flight
                .iter()
                .flat_map(|r| r.events.iter().copied())
                .collect();
            let requests: Vec<&str> = flight.iter().map(|r| r.path.as_str()).collect();
            (events, requests.join(","))
        };
        if events.is_empty() {
            return;
        }
        let seq = self.state.flight_dumps.fetch_add(1, Ordering::Relaxed);
        let out =
            std::env::temp_dir().join(format!("metadis-flight-{}-{seq}.json", std::process::id()));
        match std::fs::write(&out, obs::chrome::write_chrome_trace(&events)) {
            Ok(()) => obs::log::warn(
                "serve",
                "flight recorder dumped",
                &[
                    ("reason", Value::Str(reason.to_string())),
                    ("path", Value::Str(path.to_string())),
                    ("dump", Value::Str(out.display().to_string())),
                    ("events", (events.len() as u64).into()),
                    ("requests", Value::Str(requests)),
                ],
            ),
            Err(e) => obs::log::error(
                "serve",
                "flight dump failed",
                &[
                    ("dump", Value::Str(out.display().to_string())),
                    ("error", Value::Str(e.to_string())),
                ],
            ),
        }
    }

    /// Disassemble a batch of ELF paths concurrently on a bounded worker
    /// pool (`cfg.threads` wide; a single-threaded config degenerates to a
    /// sequential loop). Results come back in input order. Service counters
    /// are atomics, per-request allocation accounting is thread-local, and
    /// log records are written atomically — so the per-request telemetry is
    /// the same as if the batch had been processed one path at a time.
    pub fn process_batch(
        &self,
        paths: &[String],
        cfg: &Config,
    ) -> Vec<Result<RequestSummary, String>> {
        disasm_core::par::run_jobs("serve.batch", paths.len(), cfg.threads.max(1), |i| {
            self.process_path(&paths[i], cfg)
        })
    }

    /// Render the Prometheus text exposition of the service counters.
    pub fn render_metrics(&self) -> String {
        render_prometheus(&self.state)
    }

    /// Stop the exposition thread and release the port.
    pub fn shutdown(mut self) {
        self.stop_thread();
    }

    fn stop_thread(&mut self) {
        self.state.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_thread();
    }
}

/// Read ELF bytes at `path` into an [`Image`].
fn load_image(path: &str) -> Result<Image, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let elf = elfobj::Elf::parse(&bytes).map_err(|e| format!("cannot parse '{path}': {e}"))?;
    Image::from_elf(&elf).ok_or_else(|| format!("'{path}' has no executable section"))
}

/// Concatenate the flight buffer's events, oldest request first. Events
/// carry absolute timestamps from a shared origin, so the concatenation
/// renders as one coherent Chrome trace.
fn buffered_events(st: &State) -> Vec<obs::timeline::Event> {
    let flight = st.flight.lock().unwrap();
    flight
        .iter()
        .flat_map(|r| r.events.iter().copied())
        .collect()
}

/// Chrome trace-event JSON of the current flight buffer, for
/// `/debug/timeline`.
fn render_timeline(st: &State) -> String {
    obs::chrome::write_chrome_trace(&buffered_events(st))
}

fn render_prometheus(st: &State) -> String {
    let mut out = String::with_capacity(1024);
    let mut metric = |name: &str, kind: &str, help: &str, value: u64| {
        out.push_str("# HELP ");
        out.push_str(name);
        out.push(' ');
        out.push_str(help);
        out.push_str("\n# TYPE ");
        out.push_str(name);
        out.push(' ');
        out.push_str(kind);
        out.push('\n');
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    };
    metric(
        "metadis_requests_total",
        "counter",
        "Disassembly requests processed.",
        st.requests.load(Ordering::Relaxed),
    );
    metric(
        "metadis_request_errors_total",
        "counter",
        "Requests that failed before analysis (unreadable or unparsable input).",
        st.errors.load(Ordering::Relaxed),
    );
    metric(
        "metadis_text_bytes_total",
        "counter",
        "Text bytes disassembled across all requests.",
        st.text_bytes.load(Ordering::Relaxed),
    );
    metric(
        "metadis_instructions_total",
        "counter",
        "Instructions accepted across all requests.",
        st.instructions.load(Ordering::Relaxed),
    );
    metric(
        "metadis_pipeline_wall_ns_total",
        "counter",
        "Pipeline wall time across all requests, nanoseconds.",
        st.wall_ns.load(Ordering::Relaxed),
    );
    metric(
        "metadis_degradations_total",
        "counter",
        "Budget hits recorded across all requests.",
        st.degradations.load(Ordering::Relaxed),
    );
    metric(
        "metadis_alloc_bytes_total",
        "counter",
        "Heap bytes allocated by requests (0 unless allocation accounting is active).",
        st.alloc_bytes.load(Ordering::Relaxed),
    );
    metric(
        "metadis_alloc_peak_bytes",
        "gauge",
        "Largest single-request live-heap high-water mark, bytes.",
        st.alloc_peak.load(Ordering::Relaxed),
    );
    metric(
        "metadis_log_warns_total",
        "counter",
        "Warn-level log records since process start.",
        obs::log::warn_count(),
    );
    metric(
        "metadis_log_errors_total",
        "counter",
        "Error-level log records since process start.",
        obs::log::error_count(),
    );
    metric(
        "metadis_http_requests_total",
        "counter",
        "HTTP requests answered by the exposition endpoint.",
        st.http_requests.load(Ordering::Relaxed),
    );
    metric("metadis_up", "gauge", "1 while the server is running.", 1);
    // Request-latency summary: bucket-resolution quantiles from the log2
    // histogram, plus the exact sum/count pair scrapers use to derive
    // rates and means. (After the closure's last call so it can reuse
    // `out` directly.)
    let lat = st.latency.summary();
    out.push_str(
        "# HELP metadis_request_latency_ns Per-request service latency (load + pipeline), nanoseconds.\n",
    );
    out.push_str("# TYPE metadis_request_latency_ns summary\n");
    for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
        out.push_str(&format!(
            "metadis_request_latency_ns{{quantile=\"{label}\"}} {}\n",
            lat.quantile(q)
        ));
    }
    out.push_str(&format!("metadis_request_latency_ns_sum {}\n", lat.sum));
    out.push_str(&format!("metadis_request_latency_ns_count {}\n", lat.count));
    out
}

/// Answer one HTTP connection: parse the request line, route, respond,
/// close.
fn handle_connection(stream: TcpStream, st: &State) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // drain headers so well-behaved clients don't see a reset
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }
    st.http_requests.fetch_add(1, Ordering::Relaxed);
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => ("200 OK", "text/plain; version=0.0.4", render_prometheus(st)),
            "/debug/timeline" => ("200 OK", "application/json", render_timeline(st)),
            "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        }
    };
    let mut stream = reader.into_inner();
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// Fetch `path` from the server at `addr` over a fresh connection and
/// return the response body. Errors on connection failure or a non-200
/// status line.
pub fn scrape(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("malformed HTTP response"))?;
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains("200") {
        return Err(std::io::Error::other(format!(
            "server answered '{status_line}' for {path}"
        )));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_render_all_families() {
        let st = State::default();
        st.requests.store(3, Ordering::Relaxed);
        st.alloc_peak.store(4096, Ordering::Relaxed);
        let text = render_prometheus(&st);
        for family in [
            "metadis_requests_total 3",
            "metadis_request_errors_total 0",
            "metadis_text_bytes_total",
            "metadis_instructions_total",
            "metadis_pipeline_wall_ns_total",
            "metadis_degradations_total",
            "metadis_alloc_bytes_total",
            "metadis_alloc_peak_bytes 4096",
            "metadis_request_latency_ns{quantile=\"0.5\"} 0",
            "metadis_request_latency_ns{quantile=\"0.99\"} 0",
            "metadis_request_latency_ns_sum 0",
            "metadis_request_latency_ns_count 0",
            "metadis_log_warns_total",
            "metadis_log_errors_total",
            "metadis_up 1",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
        // every family carries HELP and TYPE lines
        assert_eq!(
            text.matches("# HELP ").count(),
            text.matches("# TYPE ").count()
        );
    }

    #[test]
    fn latency_summary_reports_quantiles() {
        let st = State::default();
        for v in [100u64, 200, 300, 400, 100_000] {
            st.latency.record(v);
        }
        let text = render_prometheus(&st);
        let line = |needle: &str| {
            text.lines()
                .find(|l| l.starts_with(needle))
                .unwrap_or_else(|| panic!("no line starting with {needle} in:\n{text}"))
                .to_string()
        };
        assert_eq!(
            line("metadis_request_latency_ns_count"),
            "metadis_request_latency_ns_count 5"
        );
        assert_eq!(
            line("metadis_request_latency_ns_sum"),
            "metadis_request_latency_ns_sum 101000"
        );
        // log2 buckets: p50 lands in the bucket of 300 (256..511), p99 in
        // the bucket of the outlier, clamped to the exact max.
        assert_eq!(
            line("metadis_request_latency_ns{quantile=\"0.5\"}"),
            "metadis_request_latency_ns{quantile=\"0.5\"} 511"
        );
        assert_eq!(
            line("metadis_request_latency_ns{quantile=\"0.99\"}"),
            "metadis_request_latency_ns{quantile=\"0.99\"} 100000"
        );
        assert!(text.contains("# TYPE metadis_request_latency_ns summary"));
    }

    #[test]
    fn flight_buffer_is_bounded_and_serves_debug_timeline() {
        let server = Server::start("127.0.0.1:0").unwrap();
        // Force more requests than the buffer holds; every one fails to
        // load, but still records a serve.request span.
        for i in 0..(FLIGHT_CAPACITY + 3) {
            let _ = server.process_path(&format!("/nonexistent/f{i}.elf"), &Config::default());
        }
        {
            let flight = server.state.flight.lock().unwrap();
            assert_eq!(flight.len(), FLIGHT_CAPACITY);
            // oldest entries fell off the front
            assert!(flight.front().unwrap().path.contains("f3.elf"));
            for rec in flight.iter() {
                assert!(!rec.events.is_empty());
            }
        }
        let addr = server.addr().to_string();
        let body = scrape(&addr, "/debug/timeline").unwrap();
        let json = obs::json::parse(&body).expect("timeline is valid JSON");
        let events = json.get("traceEvents").unwrap().as_arr().unwrap();
        // one B and one E per buffered request, plus lane metadata
        let begins = events
            .iter()
            .filter(|e| e.path("ph").and_then(|p| p.as_str()) == Some("B"))
            .count();
        assert_eq!(begins, FLIGHT_CAPACITY);
        server.shutdown();
    }

    #[test]
    fn unknown_path_is_404_and_scrape_reports_it() {
        let server = Server::start("127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        let e = scrape(&addr, "/nope").unwrap_err();
        assert!(e.to_string().contains("404"), "{e}");
        let ok = scrape(&addr, "/healthz").unwrap();
        assert_eq!(ok, "ok\n");
        server.shutdown();
    }

    #[test]
    fn process_batch_returns_per_path_results_in_order() {
        let server = Server::start("127.0.0.1:0").unwrap();
        let cfg = Config {
            threads: 4,
            ..Config::default()
        };
        let paths: Vec<String> = (0..6).map(|i| format!("/nonexistent/b{i}.elf")).collect();
        let results = server.process_batch(&paths, &cfg);
        assert_eq!(results.len(), 6);
        for (i, r) in results.iter().enumerate() {
            let e = r.as_ref().unwrap_err();
            assert!(e.contains(&format!("b{i}.elf")), "{e}");
        }
        assert_eq!(server.errors(), 6);
        assert_eq!(server.requests(), 0);
        server.shutdown();
    }

    #[test]
    fn process_path_errors_count() {
        let server = Server::start("127.0.0.1:0").unwrap();
        let e = server
            .process_path("/nonexistent/x.elf", &Config::default())
            .unwrap_err();
        assert!(e.contains("cannot read"), "{e}");
        assert_eq!(server.errors(), 1);
        assert_eq!(server.requests(), 0);
        server.shutdown();
    }
}
