//! # metadis
//!
//! Metadata-free accurate disassembly of complex x86-64 binaries.
//!
//! This is the umbrella crate of the workspace: it re-exports the public API
//! of every layer so downstream users can depend on a single crate.
//!
//! * [`isa`] — x86-64 decoder and assembler ([`x86_isa`]).
//! * [`elf`] — minimal ELF64 reader/writer ([`elfobj`]).
//! * [`gen`] — ground-truth synthetic binary generator ([`bingen`]).
//! * [`core`] — the disassembly pipeline: superset disassembly, statistical
//!   code model, behavioral data hints, prioritized error correction
//!   ([`disasm_core`]).
//! * [`baselines`] — linear sweep, recursive traversal and Miller-style
//!   probabilistic disassembly comparators ([`disasm_baselines`]).
//! * [`eval`] — ground-truth metrics and the experiment harness
//!   ([`disasm_eval`]).
//! * [`cli`] — the `metadis` command-line interface
//!   (disasm / gen / compare / cfg / report / diff / score / serve).
//! * [`http`] — bounded, incremental HTTP/1.1 framing (std-only) used by
//!   the service layer's nonblocking event loop.
//! * [`serve`] — service mode: a nonblocking reactor with admission
//!   control and load shedding in front of the batch worker pool, plus a
//!   Prometheus `/metrics` + readiness `/healthz` exposition surface.
//!
//! ## Quickstart
//!
//! ```
//! use metadis::gen::{GenConfig, Workload};
//! use metadis::core::{Disassembler, Config};
//! use metadis::eval::image_of;
//!
//! // Generate a synthetic stripped binary with embedded data...
//! let workload = Workload::generate(&GenConfig::small(7));
//! // ...and disassemble it without any metadata.
//! let result = Disassembler::new(Config::default()).disassemble(&image_of(&workload));
//! assert!(!result.inst_starts.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod http;
pub mod serve;

/// The counting allocator (default feature `count-alloc`): every binary and
/// test of this package accounts heap traffic through [`obs::alloc`].
/// Counting stays off until [`obs::alloc::set_enabled`] — the CLI enables
/// it per invocation — so carrying the wrapper costs one predicted branch
/// per allocation.
#[cfg(feature = "count-alloc")]
#[global_allocator]
static GLOBAL_ALLOC: obs::alloc::CountingAlloc = obs::alloc::CountingAlloc::new();

pub use bingen as gen;
pub use disasm_baselines as baselines;
pub use disasm_core as core;
pub use disasm_eval as eval;
pub use elfobj as elf;
pub use x86_isa as isa;
