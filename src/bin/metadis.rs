//! Thin binary wrapper over [`metadis::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match metadis::cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
