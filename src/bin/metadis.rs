//! Thin binary wrapper over [`metadis::cli`].
//!
//! Failures print `error[{category}]: {message}` and exit with the
//! category's stable code: `usage` = 2, `io` = 3, `parse` = 4,
//! `analysis-degraded` = 5, `overload` = 6 (see
//! [`metadis::cli::ErrorCategory`]).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match metadis::cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error[{}]: {e}", e.category.name());
            std::process::exit(e.category.exit_code());
        }
    }
}
