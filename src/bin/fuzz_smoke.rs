//! Adversarial smoke-fuzzer for the whole analysis stack.
//!
//! Generates a handful of base workloads with `bingen`, derives thousands
//! of structure-aware mutants with [`bingen::mutate`], and pushes every
//! mutant through `Elf::parse` → `Image::from_elf` → `disassemble` under a
//! wall-clock deadline. The run fails (exit 1) if any iteration:
//!
//! * panics anywhere in the stack (including a pipeline panic contained by
//!   the linear-sweep fallback — containment is a shield, the panic is
//!   still a bug),
//! * blows far past the configured deadline (the budgets exist so hostile
//!   inputs cannot hang the pipeline), or
//! * returns a disassembly that violates the core trace invariant: every
//!   text byte classified.
//!
//! Everything is seeded, so a failure report ("seed 4711") reproduces
//! exactly. CI runs this with fixed seeds (see `scripts/ci.sh`):
//!
//! ```text
//! cargo run --release --bin fuzz-smoke -- --iterations 10000
//! ```

use disasm_core::{Config, Disassembler, Image, LimitKind, Limits};
use std::panic::{catch_unwind, AssertUnwindSafe};

struct Opts {
    iterations: u64,
    seed: u64,
    deadline_ms: u64,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        iterations: 1000,
        seed: 0,
        deadline_ms: 200,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{name} expects a number"))
        };
        match a.as_str() {
            "--iterations" => opts.iterations = num("--iterations")?,
            "--seed" => opts.seed = num("--seed")?,
            "--deadline-ms" => opts.deadline_ms = num("--deadline-ms")?,
            other => {
                return Err(format!(
                    "unknown argument '{other}'\nusage: fuzz-smoke [--iterations N] [--seed N] [--deadline-ms N]"
                ))
            }
        }
    }
    Ok(opts)
}

/// Base corpus: plain small workloads plus an adversarial one, so mutants
/// start from both friendly and hostile structure.
fn base_corpus() -> Vec<Vec<u8>> {
    let mut bases: Vec<Vec<u8>> = [1u64, 77, 3042]
        .iter()
        .map(|&s| {
            bingen::Workload::generate(&bingen::GenConfig::small(s))
                .to_elf()
                .to_bytes()
        })
        .collect();
    let mut adv = bingen::GenConfig::small(9);
    adv.adversarial = true;
    bases.push(bingen::Workload::generate(&adv).to_elf().to_bytes());
    bases
}

struct Tally {
    rejected: u64,
    no_text: u64,
    disassembled: u64,
    degraded: u64,
    failures: Vec<String>,
    max_wall_ns: u64,
}

fn run_one(mutant: &[u8], limits: &Limits, overrun_ns: u64, seed: u64, t: &mut Tally) {
    let elf = match elfobj::Elf::parse(mutant) {
        Ok(e) => e,
        Err(_) => {
            t.rejected += 1;
            return;
        }
    };
    // the symbol readers must tolerate whatever parsed
    let _ = elf.symbols();
    let _ = elf.symbols_checked();
    let image = match Image::from_elf(&elf) {
        Some(i) => i,
        None => {
            t.no_text += 1;
            return;
        }
    };
    let cfg = Config {
        limits: limits.clone(),
        ..Config::default()
    };
    let d = Disassembler::new(cfg).disassemble(&image);
    t.disassembled += 1;
    t.max_wall_ns = t.max_wall_ns.max(d.trace.total_wall_ns);
    if d.trace.is_degraded() {
        t.degraded += 1;
    }
    if d.trace
        .degradations
        .iter()
        .any(|g| g.limit == LimitKind::PhasePanicked)
    {
        t.failures.push(format!(
            "seed {seed}: pipeline panicked (linear fallback engaged)"
        ));
    }
    if d.trace.total_wall_ns > overrun_ns {
        t.failures.push(format!(
            "seed {seed}: deadline overrun ({} ms > budget)",
            d.trace.total_wall_ns / 1_000_000
        ));
    }
    if d.byte_class.len() != image.text.len() {
        t.failures.push(format!(
            "seed {seed}: coverage hole ({} classified of {} bytes)",
            d.byte_class.len(),
            image.text.len()
        ));
    }
}

fn main() {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error[usage]: {e}");
            std::process::exit(2);
        }
    };
    // failures stream to stderr as structured metadis.log.v2 records, so a
    // CI harness can machine-read them alongside the human summary on stdout
    obs::log::set_level(Some(obs::log::Level::Warn));
    obs::log::to_stderr();
    let limits = Limits::with_deadline_ms(opts.deadline_ms);
    // deadline polling is deliberately coarse (every few thousand units of
    // work), so allow slack before calling a slow run an overrun; a hang
    // blows past any slack
    let overrun_ns = opts
        .deadline_ms
        .saturating_mul(2)
        .saturating_add(500)
        .saturating_mul(1_000_000);
    let bases = base_corpus();
    let mut t = Tally {
        rejected: 0,
        no_text: 0,
        disassembled: 0,
        degraded: 0,
        failures: Vec::new(),
        max_wall_ns: 0,
    };
    // the fuzzer's own panic containment: the pipeline catches its panics
    // internally, so anything reaching this catch is a parser/loader bug
    std::panic::set_hook(Box::new(|_| {}));
    let sw = obs::Stopwatch::start();
    for i in 0..opts.iterations {
        let seed = opts.seed.wrapping_add(i);
        let base = &bases[(i % bases.len() as u64) as usize];
        let mutant = bingen::mutate::mutate(base, seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_one(&mutant, &limits, overrun_ns, seed, &mut t)
        }));
        if outcome.is_err() {
            t.failures
                .push(format!("seed {seed}: PANIC escaped the parse/load path"));
        }
    }
    let _ = std::panic::take_hook();
    let secs = sw.elapsed_ns() as f64 / 1e9;
    println!(
        "fuzz-smoke: {} iterations in {secs:.1}s ({} base images, start seed {})",
        opts.iterations,
        bases.len(),
        opts.seed
    );
    println!(
        "  parse rejected {}  no-text {}  disassembled {} ({} degraded)",
        t.rejected, t.no_text, t.disassembled, t.degraded
    );
    println!(
        "  slowest disassembly {:.1} ms (budget {} ms)",
        t.max_wall_ns as f64 / 1e6,
        opts.deadline_ms
    );
    if t.disassembled == 0 {
        // a mutator regression that kills every image would silently turn
        // the fuzzer into a no-op; treat that as a failure too
        t.failures
            .push("no mutant survived to disassembly — mutator too destructive".to_string());
    }
    if !t.failures.is_empty() {
        for f in t.failures.iter().take(20) {
            obs::log::error(
                "fuzz",
                "invariant violated",
                &[("detail", obs::log::Value::Str(f.clone()))],
            );
        }
        println!(
            "  FAILED: {} invariant violation(s), see structured records on stderr",
            t.failures.len()
        );
        std::process::exit(1);
    }
    println!("  OK: no panics, no deadline overruns, full byte coverage");
}
