//! Incremental, bounded HTTP/1.1 framing for the nonblocking serve loop.
//!
//! The reactor in [`crate::serve`] holds hundreds of concurrent nonblocking
//! sockets; bytes arrive in arbitrary fragments and a hostile client may
//! never finish a request at all. [`RequestParser`] is therefore a *push*
//! parser: feed it whatever the socket produced and it either returns a
//! complete [`Request`], asks for more bytes, or rejects the stream with a
//! [`ParseError`] that maps to a concrete HTTP status. Every dimension is
//! bounded up front — request-line length, total header bytes, body size —
//! so no client can make the server buffer unbounded input (a >1 MiB
//! request line costs the attacker a connection, not the server its heap).
//!
//! The subset is deliberately tiny (the same one the blocking serve spoke):
//! one request per connection, `Connection: close` semantics, no chunked
//! transfer encoding, bodies only via `Content-Length`. [`respond`] renders
//! the matching response head; [`request`] is the blocking client used by
//! tests, benches, and `metadis scrape`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Longest accepted request line (method + target + version), bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Cap on the total header section (request line included), bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Cap on a request body (`Content-Length`), bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why a request stream was rejected. Each variant maps to one HTTP status
/// via [`ParseError::status`] so the reactor can answer before closing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// No end-of-line within [`MAX_REQUEST_LINE`] bytes.
    RequestLineTooLong,
    /// Header section exceeded [`MAX_HEADER_BYTES`].
    HeadersTooLong,
    /// `Content-Length` beyond [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// Not parseable as an HTTP/1.x request at all.
    Malformed,
}

impl ParseError {
    /// The HTTP status line this rejection is answered with.
    pub fn status(self) -> &'static str {
        match self {
            ParseError::RequestLineTooLong => "414 URI Too Long",
            ParseError::HeadersTooLong => "431 Request Header Fields Too Large",
            ParseError::BodyTooLarge => "413 Payload Too Large",
            ParseError::Malformed => "400 Bad Request",
        }
    }

    /// Stable lowercase reason for logs and JSON error bodies.
    pub fn reason(self) -> &'static str {
        match self {
            ParseError::RequestLineTooLong => "request-line-too-long",
            ParseError::HeadersTooLong => "headers-too-long",
            ParseError::BodyTooLarge => "body-too-large",
            ParseError::Malformed => "malformed",
        }
    }
}

/// One parsed request: method, target (path plus optional query), headers,
/// body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// HTTP method verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// Request target verbatim, e.g. `/analyze?path=/tmp/a.elf`.
    pub target: String,
    /// Header `(name, value)` pairs in wire order, names as sent, values
    /// trimmed. Bounded by [`MAX_HEADER_BYTES`] like the rest of the head.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length` bytes; empty without the header).
    pub body: Vec<u8>,
}

impl Request {
    /// The target without its query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or("")
    }

    /// The value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The value of query parameter `key`, if present (no percent-decoding
    /// — the serve protocol carries plain filesystem paths).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        let (_, query) = self.target.split_once('?')?;
        query.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Incremental request parser: one instance per connection, fed by the
/// reactor whenever the socket is readable. Internal buffering never
/// exceeds the header cap plus the body cap.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Byte index just past the `\r\n\r\n` (or `\n\n`) header terminator.
    headers_end: Option<usize>,
    content_length: usize,
    method: String,
    target: String,
    headers: Vec<(String, String)>,
}

impl RequestParser {
    /// A fresh parser with empty buffers.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Bytes currently buffered (diagnostics only).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Feed freshly read bytes. Returns `Ok(Some(request))` once the
    /// request is complete, `Ok(None)` while more bytes are needed, or the
    /// rejection to answer with. After either terminal outcome the parser
    /// must not be fed again (the connection closes).
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Option<Request>, ParseError> {
        // Cap the buffer before copying: headers plus body is the most a
        // legal request can occupy.
        if self.buf.len() + bytes.len() > MAX_HEADER_BYTES + MAX_BODY_BYTES {
            return Err(if self.headers_end.is_none() {
                ParseError::HeadersTooLong
            } else {
                ParseError::BodyTooLarge
            });
        }
        self.buf.extend_from_slice(bytes);
        if self.headers_end.is_none() {
            self.try_finish_headers()?;
        }
        let Some(end) = self.headers_end else {
            return Ok(None);
        };
        if self.buf.len() < end + self.content_length {
            return Ok(None);
        }
        let body = self.buf[end..end + self.content_length].to_vec();
        Ok(Some(Request {
            method: std::mem::take(&mut self.method),
            target: std::mem::take(&mut self.target),
            headers: std::mem::take(&mut self.headers),
            body,
        }))
    }

    /// Look for the header terminator; once found, parse the request line
    /// and the `Content-Length` header.
    fn try_finish_headers(&mut self) -> Result<(), ParseError> {
        // Request-line bound first: a stream with no newline in its first
        // 8 KiB is not going to produce a parseable request.
        let first_nl = self.buf.iter().position(|&b| b == b'\n');
        match first_nl {
            None if self.buf.len() > MAX_REQUEST_LINE => {
                return Err(ParseError::RequestLineTooLong)
            }
            Some(i) if i > MAX_REQUEST_LINE => return Err(ParseError::RequestLineTooLong),
            _ => {}
        }
        let end = match find_header_end(&self.buf) {
            Some(end) => end,
            None if self.buf.len() > MAX_HEADER_BYTES => return Err(ParseError::HeadersTooLong),
            None => return Ok(()),
        };
        if end > MAX_HEADER_BYTES {
            return Err(ParseError::HeadersTooLong);
        }
        let head = std::str::from_utf8(&self.buf[..end]).map_err(|_| ParseError::Malformed)?;
        let mut lines = head.lines();
        let request_line = lines.next().ok_or(ParseError::Malformed)?;
        let mut parts = request_line.split_whitespace();
        let method = parts.next().ok_or(ParseError::Malformed)?;
        let target = parts.next().ok_or(ParseError::Malformed)?;
        let version = parts.next().unwrap_or("HTTP/1.0");
        if !method.chars().all(|c| c.is_ascii_alphabetic()) || !version.starts_with("HTTP/") {
            return Err(ParseError::Malformed);
        }
        let mut content_length = 0usize;
        let mut headers = Vec::new();
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| ParseError::Malformed)?;
                }
                headers.push((name.to_string(), value.trim().to_string()));
            }
        }
        if content_length > MAX_BODY_BYTES {
            return Err(ParseError::BodyTooLarge);
        }
        self.method = method.to_string();
        self.target = target.to_string();
        self.headers = headers;
        self.content_length = content_length;
        self.headers_end = Some(end);
        Ok(())
    }
}

/// Index just past the first `\r\n\r\n` or `\n\n` terminator, if any.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .into_iter()
        .chain(buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
        .min()
}

/// Render one complete `Connection: close` HTTP response as wire bytes.
pub fn respond(status: &str, content_type: &str, body: &str) -> Vec<u8> {
    respond_with(status, content_type, &[], body)
}

/// [`respond`] plus extra `(name, value)` headers, inserted between
/// `Content-Type` and `Content-Length`. Used by the serve reactor to echo
/// `X-Metadis-Request-Id` on every response.
pub fn respond_with(
    status: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> Vec<u8> {
    let mut head = format!("HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n");
    for (k, v) in extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!(
        "Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    ));
    head.into_bytes()
}

/// Blocking one-shot HTTP client: send `method path` (plus optional body)
/// to `addr` over a fresh connection and return `(status_code, body)`.
/// Used by tests, the load-generator bench, and `metadis scrape`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let (code, _headers, body) = request_full(addr, method, path, body, &[])?;
    Ok((code, body))
}

/// A parsed client-side response: `(status, headers, body)`.
pub type Response = (u16, Vec<(String, String)>, String);

/// [`request`] with extra request headers, returning the response headers
/// too: `(status, headers, body)`. The correlation tests use this to send
/// `X-Metadis-Request-Id` and assert the echo.
pub fn request_full(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let body = body.unwrap_or("");
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    for (k, v) in extra_headers {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    req.push_str(&format!(
        "Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    ));
    stream.write_all(req.as_bytes())?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let response = String::from_utf8_lossy(&response).into_owned();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("malformed HTTP response"))?;
    let status_line = head.lines().next().unwrap_or("");
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line '{status_line}'")))?;
    let headers: Vec<(String, String)> = head
        .lines()
        .skip(1)
        .filter_map(|l| {
            let (k, v) = l.split_once(':')?;
            Some((k.to_string(), v.trim().to_string()))
        })
        .collect();
    Ok((code, headers, body.to_string()))
}

/// The `Accept` header [`fetch`] sends: prefer the OpenMetrics exposition
/// (whose histogram buckets carry request-id exemplars) with the legacy
/// Prometheus text format as fallback — the same negotiation a modern
/// Prometheus scraper performs. Non-metrics endpoints ignore it.
pub const SCRAPE_ACCEPT: &str =
    "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5";

/// `GET path` against `addr` and return the body; any non-200 status is an
/// error carrying the status code. The one keep-alive-less client path
/// shared by `metadis scrape`, `metadis top`, and the tests — one fresh
/// connection per call, `Connection: close`, bounded 10s timeouts.
pub fn fetch(addr: &str, path: &str) -> std::io::Result<String> {
    let (status, _headers, body) =
        request_full(addr, "GET", path, None, &[("Accept", SCRAPE_ACCEPT)])?;
    if status != 200 {
        return Err(std::io::Error::other(format!(
            "server answered '{status}' for {path}"
        )));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_pipelined_get_in_fragments() {
        let mut p = RequestParser::new();
        assert_eq!(p.feed(b"GET /healthz HT").unwrap(), None);
        assert_eq!(p.feed(b"TP/1.1\r\nHost: x\r\n").unwrap(), None);
        let r = p.feed(b"\r\n").unwrap().expect("complete");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path(), "/healthz");
        assert!(r.body.is_empty());
        // headers are retained, lookup is case-insensitive
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"));
        assert_eq!(r.header("x-missing"), None);
    }

    #[test]
    fn parses_post_body_and_query_params() {
        let mut p = RequestParser::new();
        let r = p
            .feed(b"POST /analyze?path=/tmp/a.elf&x=1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody")
            .unwrap()
            .expect("complete");
        assert_eq!(r.method, "POST");
        assert_eq!(r.path(), "/analyze");
        assert_eq!(r.query_param("path"), Some("/tmp/a.elf"));
        assert_eq!(r.query_param("x"), Some("1"));
        assert_eq!(r.query_param("nope"), None);
        assert_eq!(r.body, b"body");
    }

    #[test]
    fn bare_lf_terminator_is_accepted() {
        let mut p = RequestParser::new();
        let r = p.feed(b"GET /metrics HTTP/1.0\n\n").unwrap().expect("done");
        assert_eq!(r.path(), "/metrics");
    }

    #[test]
    fn oversized_request_line_is_rejected_incrementally() {
        let mut p = RequestParser::new();
        let chunk = vec![b'A'; 4096];
        assert_eq!(p.feed(&chunk).unwrap(), None);
        assert_eq!(p.feed(&chunk).unwrap(), None); // exactly at the cap
        let e = p.feed(&chunk).unwrap_err();
        assert_eq!(e, ParseError::RequestLineTooLong);
        assert_eq!(e.status(), "414 URI Too Long");
    }

    #[test]
    fn oversized_headers_and_body_are_rejected() {
        let mut p = RequestParser::new();
        p.feed(b"GET / HTTP/1.1\r\n").unwrap();
        let filler = format!("X-Junk: {}\r\n", "j".repeat(1024));
        let mut err = None;
        for _ in 0..32 {
            match p.feed(filler.as_bytes()) {
                Ok(None) => {}
                Ok(Some(_)) => panic!("junk headers completed a request"),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(err, Some(ParseError::HeadersTooLong));

        let mut p = RequestParser::new();
        let e = p
            .feed(b"POST /analyze HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n")
            .unwrap_err();
        assert_eq!(e, ParseError::BodyTooLarge);
        assert_eq!(e.status(), "413 Payload Too Large");
    }

    #[test]
    fn garbage_is_malformed_not_a_panic() {
        for junk in [
            &b"\x00\xff\xfe\r\n\r\n"[..],
            b"NOT-HTTP\r\n\r\n",
            b"GET\r\n\r\n",
            b"G3T / HTTP/1.1\r\n\r\n",
            b"GET / FTP/1.1\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        ] {
            let mut p = RequestParser::new();
            let e = p.feed(junk).unwrap_err();
            assert_eq!(e, ParseError::Malformed, "{junk:?}");
            assert_eq!(e.status(), "400 Bad Request");
        }
    }

    #[test]
    fn respond_renders_a_closeable_http_response() {
        let bytes = respond("200 OK", "text/plain", "ok\n");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 3\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nok\n"), "{text}");
        // extra headers land between Content-Type and Content-Length
        let bytes = respond_with(
            "200 OK",
            "text/plain",
            &[("X-Metadis-Request-Id", "00000000000004d2")],
            "ok\n",
        );
        let text = String::from_utf8(bytes).unwrap();
        assert!(
            text.contains("\r\nX-Metadis-Request-Id: 00000000000004d2\r\n"),
            "{text}"
        );
        assert!(text.contains("Content-Length: 3\r\n"), "{text}");
    }

    #[test]
    fn parse_error_reasons_are_stable() {
        assert_eq!(
            ParseError::RequestLineTooLong.reason(),
            "request-line-too-long"
        );
        assert_eq!(ParseError::HeadersTooLong.reason(), "headers-too-long");
        assert_eq!(ParseError::BodyTooLarge.reason(), "body-too-large");
        assert_eq!(ParseError::Malformed.reason(), "malformed");
    }
}
