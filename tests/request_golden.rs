//! Golden-file pinning of the `metadis.request.v1` bundle encoding.
//!
//! [`metadis::serve::write_request_bundle`] is pure in its record (no
//! clocks, no global state), so a fixed record must serialize
//! byte-for-byte to the checked-in golden forever. Changing any byte of
//! the encoding is a schema break and needs a new schema tag, not a
//! blessed golden.
//!
//! Regenerate after an *intentional* schema change with
//! `BLESS=1 cargo test --test request_golden`.

use metadis::serve::{write_request_bundle, RequestRecord, REQUEST_SCHEMA};
use obs::timeline::{Event, EventKind, NO_SHARD};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/request_v1_golden.json"
);

/// One fully-populated record: an anomalous (error + tail) request with a
/// two-event timeline span and two correlated log lines, exercising every
/// member the schema defines — including the embedded Chrome trace and the
/// verbatim-spliced `metadis.log.v2` lines.
fn sample_record() -> RequestRecord {
    let rid = 0xdead_beef_cafe_f00d_u64;
    RequestRecord {
        req_id: rid,
        path: "/srv/bins/example.elf".to_string(),
        endpoint: "/analyze",
        outcome: "error",
        anomalies: vec!["error", "p99-tail"],
        latency_ns: 1_234_567,
        instructions: 0,
        degradations: 0,
        events: vec![
            Event {
                ts_ns: 1_000,
                tid: 4,
                kind: EventKind::Begin,
                name: "serve.request",
                shard: NO_SHARD,
                arg: 0,
                req_id: rid,
            },
            Event {
                ts_ns: 1_235_567,
                tid: 4,
                kind: EventKind::End,
                name: "serve.request",
                shard: NO_SHARD,
                arg: 0,
                req_id: rid,
            },
        ],
        logs: vec![
            obs::log::format_line(
                1_100,
                obs::log::Level::Info,
                "serve",
                None,
                rid,
                "request begin",
                &[("path", obs::log::Value::Str("/srv/bins/example.elf".into()))],
            ),
            obs::log::format_line(
                1_235_000,
                obs::log::Level::Error,
                "serve",
                None,
                rid,
                "request failed",
                &[(
                    "error",
                    obs::log::Value::Str("cannot read '/srv/bins/example.elf'".into()),
                )],
            ),
        ],
    }
}

#[test]
fn request_v1_bundle_matches_golden_byte_for_byte() {
    let mut got = write_request_bundle(&sample_record());
    got.push('\n');
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN, &got).unwrap();
    }
    let want = std::fs::read_to_string(GOLDEN).unwrap();
    assert_eq!(
        got, want,
        "metadis.request.v1 encoding drifted; a byte-level change needs a new schema tag"
    );
}

#[test]
fn golden_bundle_is_a_well_formed_document() {
    let text = std::fs::read_to_string(GOLDEN).unwrap();
    let doc = obs::json::parse(text.trim_end()).expect("golden parses as JSON");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some(REQUEST_SCHEMA)
    );
    for key in [
        "schema",
        "req_id",
        "path",
        "endpoint",
        "outcome",
        "anomalies",
        "latency_ns",
        "instructions",
        "degradations",
        "trace",
        "timeline",
        "logs",
    ] {
        assert!(doc.get(key).is_some(), "missing {key}: {text}");
    }
    // req_id is the 16-hex form every other surface (header, log line,
    // exemplar) uses, so the bundle joins on it verbatim
    let rid = doc.get("req_id").and_then(|v| v.as_str()).unwrap();
    assert_eq!(rid.len(), 16, "{rid}");
    // the trace summary agrees with the embedded timeline
    assert_eq!(doc.path("trace.events").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(doc.path("trace.spans").and_then(|v| v.as_u64()), Some(1));
    let events = doc
        .path("timeline.traceEvents")
        .and_then(|v| v.as_arr())
        .expect("embedded Chrome trace");
    assert!(!events.is_empty());
    // every correlated log line is a metadis.log.v2 record tagged with the
    // bundle's own id
    let logs = doc.get("logs").and_then(|v| v.as_arr()).unwrap();
    assert_eq!(logs.len(), 2);
    for line in logs {
        assert_eq!(
            line.get("schema").and_then(|v| v.as_str()),
            Some("metadis.log.v2")
        );
        assert_eq!(line.get("req_id").and_then(|v| v.as_str()), Some(rid));
    }
}
