//! End-to-end flight-recorder tests: the `metadis profile` command driven
//! through the CLI on a seeded workload, its Chrome trace-event export
//! parsed back and checked for structural validity (balanced begin/end
//! pairs per lane at 1/2/4 worker threads) and for deterministic event
//! counts across identical runs. The companion cost assertion — the
//! recorder must stay under 5% wall overhead — lives in the throughput
//! bench (`profiler-on` arm), which exits nonzero when the budget is blown.

use metadis::gen::{GenConfig, OptProfile, Workload};
use obs::json::JsonValue;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// `metadis::cli::run` installs and tears down process-global observability
/// state (log sink, flight-recorder gate); tests that route through it must
/// not race each other.
static CLI_LOCK: Mutex<()> = Mutex::new(());

/// A corpus big enough that the sharded phases actually fan out: shards
/// only split at `par::MIN_SHARD_BYTES` (4 KiB) granularity, so 64
/// functions (~20 KiB of text) gives every thread count its own lanes.
fn write_elf(path: &std::path::Path, seed: u64) {
    let workload = Workload::generate(&GenConfig::new(seed, OptProfile::O2, 64, 0.10));
    std::fs::write(path, workload.to_elf().to_bytes()).unwrap();
}

fn run_profile(elf: &str, threads: usize, trace_out: &str) -> String {
    let args: Vec<String> = [
        "profile",
        elf,
        "--threads",
        &threads.to_string(),
        "--chrome-trace",
        trace_out,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    metadis::cli::run(&args).unwrap()
}

/// Count of each `(ph, name, tid)` combination — the deterministic shape of
/// a trace, with the timing stripped out.
fn event_shape(trace: &JsonValue) -> BTreeMap<(String, String, u64), usize> {
    let mut shape = BTreeMap::new();
    for e in trace.get("traceEvents").unwrap().as_arr().unwrap() {
        let key = (
            e.get("ph").unwrap().as_str().unwrap().to_string(),
            e.get("name").unwrap().as_str().unwrap().to_string(),
            e.get("tid").unwrap().as_u64().unwrap(),
        );
        *shape.entry(key).or_insert(0) += 1;
    }
    shape
}

#[test]
fn chrome_trace_is_valid_and_balanced_at_each_thread_count() {
    let dir = std::env::temp_dir().join(format!("metadis-profile-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let elf = dir.join("profile.elf");
    write_elf(&elf, 21);

    let _cli = CLI_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for threads in [1usize, 2, 4] {
        let out_path = dir.join(format!("trace-t{threads}.json"));
        let text = run_profile(elf.to_str().unwrap(), threads, out_path.to_str().unwrap());
        assert!(text.contains("timeline events"), "{text}");
        assert!(text.contains("chrome trace written"), "{text}");

        let raw = std::fs::read_to_string(&out_path).unwrap();
        let trace = obs::json::parse(&raw).expect("chrome trace parses as JSON");
        let events = trace.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty(), "no events at threads={threads}");

        // B/E pairs balance per lane, and no E ever arrives on an empty
        // stack (events are emitted in per-lane order)
        let mut depth: BTreeMap<u64, i64> = BTreeMap::new();
        for e in events {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            let tid = e.get("tid").unwrap().as_u64().unwrap();
            match ph {
                "B" => *depth.entry(tid).or_insert(0) += 1,
                "E" => {
                    let d = depth.entry(tid).or_insert(0);
                    *d -= 1;
                    assert!(*d >= 0, "E below depth 0 on lane {tid} (threads={threads})");
                }
                "M" | "i" => {}
                other => panic!("unexpected phase {other:?}"),
            }
        }
        for (tid, d) in &depth {
            assert_eq!(*d, 0, "unbalanced B/E on lane {tid} at threads={threads}");
        }

        // lane metadata: always a main lane; worker lanes appear once the
        // pool fans out
        let lanes: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .map(|e| e.path("args.name").unwrap().as_str().unwrap())
            .collect();
        assert!(lanes.contains(&"main"), "{lanes:?}");
        if threads >= 2 {
            assert!(
                lanes.iter().any(|l| l.starts_with("worker-")),
                "no worker lane at threads={threads}: {lanes:?}"
            );
            // the merge barrier shows up as an explicit span
            assert!(
                events
                    .iter()
                    .any(|e| e.get("name").unwrap().as_str() == Some("par.merge_wait")),
                "no merge-wait span at threads={threads}"
            );
        }
        assert_eq!(
            trace
                .path("otherData.dropped_events")
                .unwrap()
                .as_u64()
                .unwrap(),
            0
        );
    }
}

#[test]
fn event_counts_are_stable_for_a_seeded_corpus() {
    let dir = std::env::temp_dir().join(format!("metadis-profile-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let elf = dir.join("det.elf");
    write_elf(&elf, 22);

    let _cli = CLI_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut shapes = Vec::new();
    for run in 0..2 {
        let out_path = dir.join(format!("det-{run}.json"));
        run_profile(elf.to_str().unwrap(), 2, out_path.to_str().unwrap());
        let raw = std::fs::read_to_string(&out_path).unwrap();
        shapes.push(event_shape(&obs::json::parse(&raw).unwrap()));
    }
    assert_eq!(
        shapes[0], shapes[1],
        "same seeded input, same thread count — the recorded event shape must match"
    );
}

#[test]
fn recorder_stays_off_outside_profile_mode() {
    let dir = std::env::temp_dir().join(format!("metadis-profile-off-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let elf = dir.join("off.elf");
    write_elf(&elf, 23);

    let _cli = CLI_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // drain anything earlier tests left behind, then run a plain command
    let _ = obs::timeline::take();
    let args: Vec<String> = ["disasm", elf.to_str().unwrap()]
        .iter()
        .map(|s| s.to_string())
        .collect();
    metadis::cli::run(&args).unwrap();
    assert!(
        !obs::timeline::enabled(),
        "disasm must not enable the recorder"
    );
    assert_eq!(
        obs::timeline::take().len(),
        0,
        "no timeline events outside profile/serve mode"
    );
}
