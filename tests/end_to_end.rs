//! Workspace-level integration tests: generator → ELF → parser → pipeline →
//! metrics, exercising every crate through the public `metadis` facade.

use metadis::baselines::Baseline;
use metadis::core::{Config, Disassembler, Image};
use metadis::eval::harness::{evaluate, Tool};
use metadis::eval::{image_of, metrics, train_standard_model, CorpusSpec};
use metadis::gen::{GenConfig, OptProfile, Workload};

/// The full loop through the on-disk format: generate, serialize to ELF,
/// parse the ELF, build the image from it, disassemble, score.
#[test]
fn elf_round_trip_preserves_accuracy() {
    let w = Workload::generate(&GenConfig::new(90210, OptProfile::O1, 25, 0.12));
    let elf_bytes = w.to_elf().to_bytes();
    let parsed = metadis::elf::Elf::parse(&elf_bytes).expect("own ELF parses");
    let image = Image::from_elf(&parsed).expect("text present");
    assert_eq!(image.text, w.text);
    assert_eq!(image.entry, Some(w.entry_off));

    let model = train_standard_model(6);
    let d = Disassembler::new(Config {
        model: Some(model),
        ..Config::default()
    })
    .disassemble(&image);
    let s = metrics::score(&w, &d);
    assert!(
        s.inst.f1() > 0.95,
        "F1 through ELF round trip: {}",
        s.inst.f1()
    );
}

/// The central claim, asserted as a regression gate: ours reduces total
/// instruction errors at least 3x vs the best baseline on the embedded-data
/// corpus.
#[test]
fn headline_error_reduction_holds() {
    let mut spec = CorpusSpec::standard();
    spec.count = 4;
    let corpus = spec.generate();
    let model = train_standard_model(8);

    let ours = evaluate(&Tool::ours(model), &corpus);
    let mut best_baseline = usize::MAX;
    for b in Baseline::ALL {
        let r = evaluate(&Tool::Baseline(b), &corpus);
        best_baseline = best_baseline.min(r.score.inst.errors());
    }
    let ours_errors = ours.score.inst.errors().max(1);
    let factor = best_baseline as f64 / ours_errors as f64;
    assert!(
        factor >= 3.0,
        "error reduction only {factor:.2}x (ours {} vs best baseline {best_baseline})",
        ours.score.inst.errors()
    );
}

/// Every tool, on every profile, terminates and produces a structurally
/// sound result (classes cover all bytes; starts are sorted and deduped).
#[test]
fn all_tools_produce_wellformed_output() {
    let model = train_standard_model(4);
    for profile in OptProfile::ALL {
        let w = Workload::generate(&GenConfig::new(777, profile, 12, 0.15));
        let image = image_of(&w);
        let tools: Vec<Tool> = Baseline::ALL
            .iter()
            .map(|&b| Tool::Baseline(b))
            .chain([Tool::ours(model.clone())])
            .collect();
        for tool in tools {
            let d = tool.run(&image);
            assert_eq!(d.byte_class.len(), w.text.len(), "{}", tool.name());
            let mut sorted = d.inst_starts.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted,
                d.inst_starts,
                "{} starts not sorted/unique",
                tool.name()
            );
            for &s in &d.inst_starts {
                assert!(
                    x86_isa_decodes(&w.text, s),
                    "{} accepted undecodable offset {s}",
                    tool.name()
                );
            }
        }
    }
}

fn x86_isa_decodes(text: &[u8], off: u32) -> bool {
    metadis::isa::decode_at(text, off as usize).is_ok()
}

/// Disassembling with no entry point (e.g. a shared-object-like image)
/// still works through structural + statistical evidence.
#[test]
fn works_without_entry_point() {
    let w = Workload::generate(&GenConfig::new(4242, OptProfile::O2, 20, 0.10));
    let mut image = image_of(&w);
    image.entry = None;
    let model = train_standard_model(6);
    let d = Disassembler::new(Config {
        model: Some(model),
        ..Config::default()
    })
    .disassemble(&image);
    let s = metrics::score(&w, &d);
    assert!(
        s.inst.recall() > 0.85,
        "recall without entry point: {}",
        s.inst.recall()
    );
}

/// The pipeline is deterministic: identical inputs give identical outputs.
#[test]
fn pipeline_is_deterministic() {
    let w = Workload::generate(&GenConfig::small(5));
    let image = image_of(&w);
    let model = train_standard_model(3);
    let dis = Disassembler::new(Config {
        model: Some(model),
        ..Config::default()
    });
    let a = dis.disassemble(&image);
    let b = dis.disassemble(&image);
    assert_eq!(a.inst_starts, b.inst_starts);
    assert_eq!(a.byte_class, b.byte_class);
    assert_eq!(a.func_starts, b.func_starts);
}
