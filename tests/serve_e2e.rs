//! End-to-end batch-service test: a real TCP server answering `/metrics`
//! and `/healthz`, fed two disassembly requests, scraped with the same
//! client the `metadis scrape` command uses.

use metadis::core::{Config, Limits};
use metadis::gen::{GenConfig, Workload};
use metadis::serve::{scrape, Server};
use std::sync::Mutex;

/// `metadis::cli::run` installs and tears down the process-global log sink;
/// tests that route through it must not race each other.
static CLI_LOCK: Mutex<()> = Mutex::new(());

fn write_elf(path: &std::path::Path, seed: u64) {
    let workload = Workload::generate(&GenConfig::small(seed));
    std::fs::write(path, workload.to_elf().to_bytes()).unwrap();
}

#[test]
fn serve_answers_metrics_and_healthz_and_counts_requests() {
    let dir = std::env::temp_dir().join(format!("metadis-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let elf = dir.join("serve.elf");
    write_elf(&elf, 11);

    obs::alloc::set_enabled(true);
    let server = Server::start("127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();

    // health before any work
    assert_eq!(scrape(&addr, "/healthz").unwrap(), "ok\n");

    // two requests: one good ELF, twice
    let cfg = Config::default();
    let path = elf.to_str().unwrap();
    let a = server.process_path(path, &cfg).unwrap();
    let b = server.process_path(path, &cfg).unwrap();
    assert!(a.instructions > 0);
    assert_eq!(a.instructions, b.instructions, "same input, same result");

    // the exposition surface reflects both requests, labeled by endpoint
    let metrics = scrape(&addr, "/metrics").unwrap();
    assert!(
        metrics.contains(r#"metadis_requests_total{endpoint="batch"} 2"#),
        "{metrics}"
    );
    assert!(
        metrics.contains("metadis_request_errors_total 0"),
        "{metrics}"
    );
    // scrape() negotiates the OpenMetrics exposition, where a counter
    // family is declared without the _total suffix its samples carry and
    // the body ends with the mandatory EOF marker
    assert!(
        metrics.contains("# TYPE metadis_requests counter"),
        "{metrics}"
    );
    assert!(metrics.ends_with("# EOF\n"), "{metrics}");
    assert!(metrics.contains("metadis_up 1"), "{metrics}");
    // instructions accumulate across requests
    let want = format!("metadis_instructions_total {}", a.instructions * 2);
    assert!(metrics.contains(&want), "missing '{want}' in {metrics}");
    // with the count-alloc feature (default) the requests allocated
    if cfg!(feature = "count-alloc") {
        assert!(
            !metrics.contains("metadis_alloc_bytes_total 0\n"),
            "{metrics}"
        );
    }

    // a bad request is counted as an error, not a crash
    assert!(server
        .process_path(dir.join("missing.elf").to_str().unwrap(), &cfg)
        .is_err());
    let metrics = scrape(&addr, "/metrics").unwrap();
    assert!(
        metrics.contains("metadis_request_errors_total 1"),
        "{metrics}"
    );
    // the error is answered too, so the per-endpoint counter includes it
    // while the internal success counter does not
    assert!(
        metrics.contains(r#"metadis_requests_total{endpoint="batch"} 3"#),
        "{metrics}"
    );
    assert_eq!(server.requests(), 2);

    server.shutdown();
}

#[test]
fn serve_command_drains_a_request_file() {
    let dir = std::env::temp_dir().join(format!("metadis-serve-cmd-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let elf = dir.join("batch.elf");
    write_elf(&elf, 12);
    let list = dir.join("requests.txt");
    std::fs::write(
        &list,
        format!(
            "# comment lines and blanks are skipped\n\n{}\n{}\n",
            elf.display(),
            elf.display()
        ),
    )
    .unwrap();
    let log = dir.join("serve.log");

    let _cli = CLI_LOCK.lock().unwrap();
    let args: Vec<String> = [
        "serve",
        "--from",
        list.to_str().unwrap(),
        "--log",
        log.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let out = metadis::cli::run(&args).unwrap();
    assert!(out.contains("served 2 request(s), 0 error(s)"), "{out}");
    assert!(
        out.contains(r#"metadis_requests_total{endpoint="batch"} 2"#),
        "{out}"
    );

    // the log stream recorded the lifecycle as metadis.log.v2 records
    let logged = std::fs::read_to_string(&log).unwrap();
    assert!(logged.contains(r#""schema":"metadis.log.v2""#), "{logged}");
    assert!(logged.contains(r#""msg":"listening""#), "{logged}");
    assert!(logged.contains(r#""msg":"request done""#), "{logged}");
}

#[test]
fn concurrent_clients_keep_per_request_capture_isolated() {
    let dir = std::env::temp_dir().join(format!("metadis-serve-conc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut paths = Vec::new();
    for seed in 40u64..46 {
        let elf = dir.join(format!("conc-{seed}.elf"));
        write_elf(&elf, seed);
        paths.push(elf.to_str().unwrap().to_string());
    }
    let list = dir.join("requests.txt");
    std::fs::write(&list, paths.join("\n") + "\n").unwrap();
    let log = dir.join("conc.log");

    // sequential reference summaries for the same inputs
    let reference = Server::start("127.0.0.1:0").unwrap();
    let seq: Vec<_> = paths
        .iter()
        .map(|p| reference.process_path(p, &Config::default()).unwrap())
        .collect();
    reference.shutdown();

    // the serve command with a 4-wide worker pool over the same batch
    let _cli = CLI_LOCK.lock().unwrap();
    let args: Vec<String> = [
        "serve",
        "--from",
        list.to_str().unwrap(),
        "--threads",
        "4",
        "--log",
        log.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let out = metadis::cli::run(&args).unwrap();
    assert!(out.contains("served 6 request(s), 0 error(s)"), "{out}");

    // every log line stays atomic under concurrency: well-formed, one
    // record per line, no interleaving mid-record
    let logged = std::fs::read_to_string(&log).unwrap();
    for line in logged.lines() {
        assert!(
            line.starts_with(r#"{"schema":"metadis.log.v2","ts_ns":"#),
            "interleaved or malformed log line: {line}"
        );
        assert!(line.ends_with('}'), "truncated log line: {line}");
    }
    // each request surfaced exactly one begin and one done record, carrying
    // the per-request instruction count measured by *its* worker
    for (p, s) in paths.iter().zip(&seq) {
        let begin = format!(r#""msg":"request begin","fields":{{"path":"{p}""#);
        let done_needle = format!(r#""path":"{p}","instructions":{}"#, s.instructions);
        assert_eq!(logged.matches(&begin).count(), 1, "{p} begin\n{logged}");
        assert_eq!(
            logged.matches(&done_needle).count(),
            1,
            "{p} done\n{logged}"
        );
        assert!(s.instructions > 0, "{p}");
    }
}

#[test]
fn deadline_degradations_still_fire_with_worker_threads() {
    let dir = std::env::temp_dir().join(format!("metadis-serve-ddl-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let elf = dir.join("deadline.elf");
    write_elf(&elf, 13);

    // an already-expired deadline on a multi-threaded config: the shards
    // poll the deadline cooperatively, so the run degrades (instead of
    // hanging or panicking) and still classifies every byte
    let cfg = Config {
        threads: 4,
        limits: Limits {
            deadline_ms: Some(0),
            ..Limits::default()
        },
        ..Config::default()
    };
    let server = Server::start("127.0.0.1:0").unwrap();
    let s = server.process_path(elf.to_str().unwrap(), &cfg).unwrap();
    assert!(s.degradations >= 1, "{s:?}");
    assert!(s.text_bytes > 0, "{s:?}");
    let metrics = server.render_metrics();
    assert!(metrics.contains("metadis_degradations_total"), "{metrics}");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Hostile-client coverage: the admission-controlled reactor must stay
// responsive (live /healthz, structured 503 sheds) under slowloris
// writers, mid-request disconnects, oversized requests, and a
// 100-connection mixed soak — never a panic, never a hang.
// ---------------------------------------------------------------------------

use metadis::http;
use metadis::serve::ServeOptions;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

#[test]
fn slowloris_client_is_shed_while_healthz_stays_live() {
    let opts = ServeOptions {
        client_deadline_ms: 300,
        drain_ms: 200,
        ..ServeOptions::default()
    };
    let server = Server::start_with("127.0.0.1:0", opts, Config::default()).unwrap();
    let addr = server.addr().to_string();

    // one byte every 50ms: the request can never complete within the
    // 300ms client deadline
    let loris_addr = addr.clone();
    let loris = std::thread::spawn(move || {
        let mut s = TcpStream::connect(&loris_addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        for b in b"GET /analyze?path=/tmp/x HTTP/1.1\r\n" {
            if s.write_all(&[*b]).is_err() {
                break; // server already shed us and closed
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        let mut resp = String::new();
        let _ = s.read_to_string(&mut resp);
        resp
    });

    // the reactor keeps answering everyone else the whole time
    for _ in 0..10 {
        assert_eq!(scrape(&addr, "/healthz").unwrap(), "ok\n");
        std::thread::sleep(Duration::from_millis(40));
    }

    let resp = loris.join().unwrap();
    assert!(
        resp.contains("503") && resp.contains(r#""reason":"deadline""#),
        "slowloris got: {resp:?}"
    );
    let metrics = server.render_metrics();
    assert!(
        metrics.contains("metadis_requests_shed_deadline_total 1"),
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn mid_header_disconnect_is_counted_not_fatal() {
    let server = Server::start("127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();

    for _ in 0..5 {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(b"GET /analyze?path=/tmp/x HTTP/1.1\r\nHost: half")
            .unwrap();
        drop(s); // hang up mid-header
    }
    // give the reactor a few ticks to observe the disconnects
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let metrics = server.render_metrics();
        if metrics.contains("metadis_client_disconnects_total 5") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "disconnects never counted:\n{metrics}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(scrape(&addr, "/healthz").unwrap(), "ok\n");
    server.shutdown();
}

#[test]
fn oversized_request_line_is_rejected_without_buffering_it() {
    let server = Server::start("127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();

    // a >1MiB request line: the framing layer rejects at its 8KiB cap,
    // long before the flood is buffered
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let chunk = vec![b'a'; 64 * 1024];
    let mut sent = 0usize;
    let _ = s.write_all(b"GET /");
    while sent < 1024 * 1024 + chunk.len() {
        match s.write_all(&chunk) {
            Ok(()) => sent += chunk.len(),
            Err(_) => break, // server rejected and closed mid-flood
        }
    }
    let mut resp = String::new();
    let _ = s.read_to_string(&mut resp);
    // either we saw the 414 before the close, or the server reset us
    // mid-flood; both mean the line was refused, not buffered
    assert!(
        resp.is_empty() || resp.contains("414"),
        "unexpected response: {resp:?}"
    );
    assert_eq!(scrape(&addr, "/healthz").unwrap(), "ok\n");
    let metrics = server.render_metrics();
    assert!(
        metrics.contains("metadis_http_bad_requests_total 1"),
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn hundred_concurrent_clients_soak_with_injected_faults() {
    let dir = std::env::temp_dir().join(format!("metadis-serve-soak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let elf = dir.join("soak.elf");
    write_elf(&elf, 77);
    let elf = elf.to_str().unwrap().to_string();

    let opts = ServeOptions {
        drain_ms: 500,
        ..ServeOptions::default()
    };
    let server = Server::start_with("127.0.0.1:0", opts, Config::default()).unwrap();
    let addr = server.addr().to_string();

    let barrier = std::sync::Arc::new(std::sync::Barrier::new(100));
    let mut clients = Vec::new();
    for i in 0..100usize {
        let addr = addr.clone();
        let elf = elf.clone();
        let barrier = std::sync::Arc::clone(&barrier);
        clients.push(std::thread::spawn(move || -> Result<(), String> {
            barrier.wait();
            match i % 4 {
                // the well-behaved majority: analyze a real ELF
                0 | 1 => {
                    let (status, body) =
                        http::request(&addr, "GET", &format!("/analyze?path={elf}"), None)
                            .map_err(|e| format!("client {i}: {e}"))?;
                    if status == 200 && body.contains("\"instructions\"") {
                        return Ok(());
                    }
                    if status == 503 && body.contains(r#""category":"overload""#) {
                        return Ok(()); // shed is a legal answer under load
                    }
                    Err(format!("client {i}: status {status}, body {body:?}"))
                }
                // fault injection: garbage bytes
                2 => {
                    let mut s = TcpStream::connect(&addr).map_err(|e| e.to_string())?;
                    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                    let _ = s.write_all(b"\x00\xffnot http at all\r\n\r\n");
                    let mut resp = String::new();
                    let _ = s.read_to_string(&mut resp);
                    Ok(()) // any non-hang outcome is fine
                }
                // fault injection: connect, dribble, hang up
                _ => {
                    let mut s = TcpStream::connect(&addr).map_err(|e| e.to_string())?;
                    let _ = s.write_all(b"GET /he");
                    std::thread::sleep(Duration::from_millis(5));
                    drop(s);
                    Ok(())
                }
            }
        }));
    }
    for c in clients {
        c.join().expect("no client panicked").expect("soak client");
    }

    // the server survived 100 concurrent clients with injected faults and
    // still answers; its accounting is coherent
    assert_eq!(scrape(&addr, "/healthz").unwrap(), "ok\n");
    let metrics = server.render_metrics();
    assert!(metrics.contains("metadis_up 1"), "{metrics}");
    let analyzed = server.requests() + server.sheds();
    assert!(analyzed >= 50, "50 analyze clients, got {analyzed}");
    server.shutdown();
}

#[test]
fn queue_saturation_sheds_with_structured_503_and_some_still_succeed() {
    let dir = std::env::temp_dir().join(format!("metadis-serve-queue-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let elf = dir.join("queue.elf");
    write_elf(&elf, 78);
    let elf = elf.to_str().unwrap().to_string();

    // one worker, a two-deep queue, 24 simultaneous clients: the queue
    // must overflow, and overflow must shed — not stall
    let opts = ServeOptions {
        queue_depth: 2,
        drain_ms: 500,
        ..ServeOptions::default()
    };
    let cfg = Config {
        threads: 1,
        ..Config::default()
    };
    let server = Server::start_with("127.0.0.1:0", opts, cfg).unwrap();
    let addr = server.addr().to_string();

    let barrier = std::sync::Arc::new(std::sync::Barrier::new(24));
    let mut clients = Vec::new();
    for i in 0..24usize {
        let addr = addr.clone();
        let elf = elf.clone();
        let barrier = std::sync::Arc::clone(&barrier);
        clients.push(std::thread::spawn(move || {
            barrier.wait();
            http::request(&addr, "GET", &format!("/analyze?path={elf}"), None)
                .map_err(|e| format!("client {i}: {e}"))
        }));
    }
    let mut ok = 0u64;
    let mut shed = 0u64;
    for c in clients {
        let (status, body) = c.join().unwrap().unwrap();
        match status {
            200 => {
                assert!(body.contains("\"instructions\""), "{body}");
                ok += 1;
            }
            503 => {
                assert!(body.contains(r#""category":"overload""#), "{body}");
                assert!(body.contains(r#""reason":"queue-full""#), "{body}");
                shed += 1;
            }
            other => panic!("client got status {other}: {body}"),
        }
    }
    assert!(ok >= 1, "at least the queued requests must succeed");
    assert!(shed >= 1, "24 clients vs queue of 2 must shed");
    assert_eq!(server.sheds(), shed);
    assert_eq!(server.requests(), ok);
    server.shutdown();
}

#[test]
fn graceful_shutdown_answers_inflight_requests_first() {
    let dir = std::env::temp_dir().join(format!("metadis-serve-drain-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let elf = dir.join("drain.elf");
    write_elf(&elf, 79);
    let elf = elf.to_str().unwrap().to_string();

    let server = Server::start("127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();

    // a client whose request races the shutdown
    let req_addr = addr.clone();
    let client = std::thread::spawn(move || {
        http::request(&req_addr, "GET", &format!("/analyze?path={elf}"), None)
    });
    std::thread::sleep(Duration::from_millis(20));
    server.shutdown(); // drains before dropping the listener

    let (status, body) = client.join().unwrap().unwrap();
    assert_eq!(status, 200, "in-flight request lost in shutdown: {body}");
    assert!(body.contains("\"instructions\""), "{body}");

    // the port is released and refuses new work
    assert!(http::request(&addr, "GET", "/healthz", None).is_err());
}

#[test]
fn serve_strict_exits_overload_when_requests_were_shed() {
    let dir = std::env::temp_dir().join(format!("metadis-serve-strict-{}", std::process::id()));
    let watch = dir.join("watch");
    std::fs::create_dir_all(&watch).unwrap();
    let log = dir.join("strict.log");

    let _cli = CLI_LOCK.lock().unwrap();
    // queue-depth 0 sheds every HTTP analyze request; --watch keeps the
    // server up until --max-requests batch paths have been processed
    let args: Vec<String> = [
        "serve",
        "--watch",
        watch.to_str().unwrap(),
        "--max-requests",
        "1",
        "--poll-ms",
        "20",
        "--queue-depth",
        "0",
        "--drain-ms",
        "200",
        "--strict",
        "--log",
        log.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let serve = std::thread::spawn(move || metadis::cli::run(&args));

    // discover the ephemeral port from the 'listening' log event
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&log) {
            if let Some(line) = text.lines().find(|l| l.contains(r#""msg":"listening""#)) {
                let json = obs::json::parse(line).unwrap();
                break json
                    .path("fields.addr")
                    .and_then(|v| v.as_str())
                    .unwrap()
                    .to_string();
            }
        }
        assert!(std::time::Instant::now() < deadline, "server never came up");
        std::thread::sleep(Duration::from_millis(10));
    };

    // an HTTP client gets shed (queue admits nothing)...
    let (status, body) = http::request(&addr, "GET", "/analyze?path=/tmp/x", None).unwrap();
    assert_eq!(status, 503, "{body}");
    assert!(body.contains(r#""category":"overload""#), "{body}");

    // ...then a watched file satisfies --max-requests and the command
    // exits — with category overload under --strict, exit code 6
    write_elf(&watch.join("work.elf"), 80);
    let err = serve.join().unwrap().unwrap_err();
    assert_eq!(err.category, metadis::cli::ErrorCategory::Overload, "{err}");
    assert_eq!(err.category.exit_code(), 6);
    assert!(err.message.contains("shed under overload"), "{err}");

    // the shed left its structured trail in the log
    let logged = std::fs::read_to_string(&log).unwrap();
    assert!(logged.contains(r#""msg":"request shed""#), "{logged}");
    assert!(logged.contains(r#""category":"overload""#), "{logged}");
    assert!(logged.contains(r#""msg":"draining""#), "{logged}");
    assert!(logged.contains(r#""msg":"shutdown complete""#), "{logged}");
}

// ---------------------------------------------------------------------------
// Time-series telemetry: the /debug/metrics/history endpoint, the SLO
// burn-rate engine under induced overload, and the `metadis top` console.
// ---------------------------------------------------------------------------

/// Poll the history endpoint until the sampler has accumulated at least
/// `want` snapshots, returning the first body that satisfies it.
fn wait_for_history(addr: &str, want: usize) -> String {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let body = scrape(addr, "/debug/metrics/history").unwrap();
        let doc = obs::json::parse(&body).unwrap();
        if let Some(samples) = obs::series::samples_from_json(&doc) {
            if samples.len() >= want {
                break body;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sampler never produced {want} snapshots: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn history_endpoint_answers_the_pinned_series_schema() {
    let dir = std::env::temp_dir().join(format!("metadis-serve-hist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let elf = dir.join("hist.elf");
    write_elf(&elf, 81);

    let opts = ServeOptions {
        series_interval_ms: 20,
        series_window: 50,
        ..ServeOptions::default()
    };
    let server = Server::start_with("127.0.0.1:0", opts, Config::default()).unwrap();
    let addr = server.addr().to_string();
    server
        .process_path(elf.to_str().unwrap(), &Config::default())
        .unwrap();

    let body = wait_for_history(&addr, 2);
    let doc = obs::json::parse(&body).unwrap();
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some(obs::series::SCHEMA),
        "{body}"
    );
    assert_eq!(doc.get("interval_ms").and_then(|v| v.as_u64()), Some(20));
    assert_eq!(doc.get("window").and_then(|v| v.as_u64()), Some(50));

    // the document round-trips through the typed representation byte-for-byte
    let samples = obs::series::samples_from_json(&doc).unwrap();
    assert_eq!(
        obs::series::write_history_json(20, 50, &samples),
        body,
        "history JSON must round-trip"
    );

    // samples are cumulative snapshots in time order carrying the counters,
    // gauges, and SLO verdicts the top console consumes
    assert!(
        samples.windows(2).all(|w| w[0].ts_ns < w[1].ts_ns),
        "timestamps must strictly increase"
    );
    let latest = samples.last().unwrap();
    assert!(latest.counter("requests") >= 1, "{body}");
    assert!(latest.counter("instructions") > 0, "{body}");
    let objectives: Vec<&str> = latest.slo.iter().map(|s| s.objective.as_str()).collect();
    assert_eq!(objectives, ["availability", "latency_p99"], "{body}");
    assert!(latest.slo.iter().all(|s| !s.breached), "{body}");
    server.shutdown();
}

#[test]
fn induced_overload_breaches_availability_slo_and_healthz_reports_it() {
    // queue-depth 0 sheds every HTTP analyze request; a fast sampler tick
    // lets the burn windows cross within the test budget
    let opts = ServeOptions {
        queue_depth: 0,
        series_interval_ms: 10,
        series_window: 64,
        drain_ms: 200,
        ..ServeOptions::default()
    };
    let server = Server::start_with("127.0.0.1:0", opts, Config::default()).unwrap();
    let addr = server.addr().to_string();

    // keep shedding across sampler ticks until both burn windows cross:
    // 100% of traffic shed against a 0.1% error budget is a burn of 1000
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let metrics = loop {
        let (status, body) = http::request(&addr, "GET", "/analyze?path=/tmp/x", None).unwrap();
        assert_eq!(status, 503, "{body}");
        assert!(body.contains(r#""category":"overload""#), "{body}");
        let metrics = scrape(&addr, "/metrics").unwrap();
        if metrics.contains(r#"metadis_slo_breached{objective="availability"} 1"#) {
            break metrics;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "availability SLO never breached:\n{metrics}"
        );
        std::thread::sleep(Duration::from_millis(15));
    };

    // the burn-rate gauge rose past the 1.0 alert threshold
    let burn_line = metrics
        .lines()
        .find(|l| l.starts_with(r#"metadis_slo_burn_rate{objective="availability",window="fast"}"#))
        .unwrap_or_else(|| panic!("no fast-window burn gauge:\n{metrics}"));
    let burn: f64 = burn_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(burn > 1.0, "{burn_line}");

    // /healthz is saturated (queue depth 0) and its JSON detail names the
    // breached objective
    let (status, body) = http::request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 503, "{body}");
    let json = obs::json::parse(&body).unwrap();
    let slo = json
        .get("slo")
        .and_then(|v| v.as_arr())
        .unwrap_or_else(|| panic!("healthz JSON lacks slo block: {body}"));
    let avail = slo
        .iter()
        .find(|s| s.get("objective").and_then(|v| v.as_str()) == Some("availability"))
        .unwrap_or_else(|| panic!("no availability status: {body}"));
    assert!(avail.to_json().contains(r#""breached":true"#), "{body}");
    server.shutdown();
}

#[test]
fn top_once_renders_a_snapshot_from_a_live_server() {
    let dir = std::env::temp_dir().join(format!("metadis-serve-top-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let elf = dir.join("top.elf");
    write_elf(&elf, 82);

    let opts = ServeOptions {
        series_interval_ms: 20,
        series_window: 50,
        ..ServeOptions::default()
    };
    let server = Server::start_with("127.0.0.1:0", opts, Config::default()).unwrap();
    let addr = server.addr().to_string();
    server
        .process_path(elf.to_str().unwrap(), &Config::default())
        .unwrap();
    wait_for_history(&addr, 2);

    let _cli = CLI_LOCK.lock().unwrap();
    let args: Vec<String> = ["top", &addr, "--once"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let out = metadis::cli::run(&args).unwrap();
    assert!(out.contains("metadis top"), "{out}");
    assert!(out.contains(&addr), "{out}");
    // the SLO headline and every table column are present
    assert!(out.contains("availability"), "{out}");
    assert!(out.contains("latency_p99"), "{out}");
    for col in [
        "t(s)", "rps", "err/s", "shed/s", "queue", "inflight", "p50(ms)", "p99(ms)", "burn",
    ] {
        assert!(out.contains(col), "missing column {col}: {out}");
    }
    server.shutdown();
}

/// The tentpole contract end to end: one request id, supplied by the
/// client, shows up verbatim on every observability surface — the response
/// header, the structured log lines, the `/metrics` exemplars, and the
/// `/debug/requests/<id>` forensic bundle (timeline and log slice
/// included).
#[test]
fn one_request_id_correlates_every_surface() {
    // hold the CLI lock so no run()-based test tears down the global
    // logger while this request's log slice is being captured
    let _cli = CLI_LOCK.lock().unwrap();
    obs::log::set_level(Some(obs::log::Level::Info));

    let server = Server::start("127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();
    let rid = "1badb002deadc0de";

    // an error request (nonexistent input) is always anomalous → retained
    let (status, headers, body) = http::request_full(
        &addr,
        "GET",
        "/analyze?path=/nonexistent/corr.elf",
        None,
        &[("X-Metadis-Request-Id", rid)],
    )
    .unwrap();
    assert_eq!(status, 422, "{body}");

    // 1. the response echoes the client's id verbatim
    let echoed = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("x-metadis-request-id"))
        .map(|(_, v)| v.as_str());
    assert_eq!(echoed, Some(rid));

    // 2. the latency exemplar on /metrics names the same id
    let metrics = scrape(&addr, "/metrics").unwrap();
    assert!(
        metrics.contains(&format!("# {{req_id=\"{rid}\"}}")),
        "no exemplar for {rid}:\n{metrics}"
    );
    let exemplar_line = metrics
        .lines()
        .find(|l| l.contains("metadis_request_latency_histogram_ns_bucket") && l.contains(rid))
        .unwrap_or_else(|| panic!("exemplar not on a latency bucket:\n{metrics}"));
    assert!(exemplar_line.contains("le=\""), "{exemplar_line}");

    // 2b. a legacy scrape (no Accept header, as a version=0.0.4-only
    // Prometheus sends) gets the plain text exposition: correct content
    // type, no exemplar suffixes (a parse error in that format), no EOF
    let (status, headers, legacy) =
        http::request_full(&addr, "GET", "/metrics", None, &[]).unwrap();
    assert_eq!(status, 200);
    let ctype = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-type"))
        .map(|(_, v)| v.as_str());
    assert_eq!(ctype, Some("text/plain; version=0.0.4"));
    assert!(!legacy.contains("# {req_id="), "{legacy}");
    assert!(!legacy.contains("# EOF"), "{legacy}");

    // 3. the retention index lists the id, and the bundle resolves
    let index = scrape(&addr, "/debug/requests").unwrap();
    assert!(index.contains(rid), "{index}");
    let bundle = scrape(&addr, &format!("/debug/requests/{rid}")).unwrap();
    let doc = obs::json::parse(&bundle).expect("bundle is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("metadis.request.v1")
    );
    assert_eq!(doc.get("req_id").and_then(|v| v.as_str()), Some(rid));
    assert_eq!(doc.get("outcome").and_then(|v| v.as_str()), Some("error"));
    assert!(doc
        .get("anomalies")
        .and_then(|v| v.as_arr())
        .is_some_and(|a| a.iter().any(|x| x.as_str() == Some("error"))));

    // 4. the embedded timeline slice is tagged with the id
    let events = doc
        .path("timeline.traceEvents")
        .and_then(|v| v.as_arr())
        .expect("bundle embeds a Chrome trace");
    assert!(
        events
            .iter()
            .any(|e| e.path("args.req_id").and_then(|v| v.as_str()) == Some(rid)),
        "{bundle}"
    );

    // 5. the correlated log slice carries the request lifecycle under the
    // same id
    let logs = doc.get("logs").and_then(|v| v.as_arr()).unwrap();
    assert!(!logs.is_empty(), "{bundle}");
    for line in logs {
        assert_eq!(
            line.get("schema").and_then(|v| v.as_str()),
            Some("metadis.log.v2"),
            "{bundle}"
        );
        assert_eq!(
            line.get("req_id").and_then(|v| v.as_str()),
            Some(rid),
            "{bundle}"
        );
    }
    assert!(
        logs.iter()
            .any(|l| l.get("msg").and_then(|v| v.as_str()) == Some("request failed")),
        "{bundle}"
    );
    server.shutdown();
}

/// Soak the sampler well past `--series-window`: the ring must wrap
/// (evicting oldest samples) while `/debug/metrics/history` stays a valid,
/// round-trippable `metadis.series.v1` document with strictly increasing
/// timestamps and exactly `window` retained samples.
#[test]
fn history_ring_stays_schema_valid_across_wraparound() {
    let window = 4usize;
    let opts = ServeOptions {
        series_interval_ms: 5,
        series_window: window,
        ..ServeOptions::default()
    };
    let server = Server::start_with("127.0.0.1:0", opts, Config::default()).unwrap();
    let addr = server.addr().to_string();

    // fill the ring, remember the oldest retained timestamp...
    let body = wait_for_history(&addr, window);
    let first = obs::series::samples_from_json(&obs::json::parse(&body).unwrap()).unwrap();
    let oldest_ts = first.first().unwrap().ts_ns;

    // ...then soak until eviction is provable: the ring stays at capacity
    // while its oldest sample is newer than the one we saw before
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let (body, samples) = loop {
        let body = scrape(&addr, "/debug/metrics/history").unwrap();
        let doc = obs::json::parse(&body).expect("history stays valid JSON");
        let samples = obs::series::samples_from_json(&doc).expect("history stays series.v1");
        if samples.len() == window && samples.first().unwrap().ts_ns > oldest_ts {
            break (body, samples);
        }
        assert!(
            samples.len() <= window,
            "ring exceeded its window: {} > {window}",
            samples.len()
        );
        assert!(
            std::time::Instant::now() < deadline,
            "ring never wrapped past its window:\n{body}"
        );
        std::thread::sleep(Duration::from_millis(5));
    };

    // after eviction the document still round-trips byte-for-byte and its
    // samples are still strictly time-ordered cumulative snapshots
    assert_eq!(
        obs::series::write_history_json(5, window, &samples),
        body,
        "post-wraparound history must round-trip"
    );
    assert!(
        samples.windows(2).all(|w| w[0].ts_ns < w[1].ts_ns),
        "{body}"
    );
    server.shutdown();
}
