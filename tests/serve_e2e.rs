//! End-to-end batch-service test: a real TCP server answering `/metrics`
//! and `/healthz`, fed two disassembly requests, scraped with the same
//! client the `metadis scrape` command uses.

use metadis::core::{Config, Limits};
use metadis::gen::{GenConfig, Workload};
use metadis::serve::{scrape, Server};
use std::sync::Mutex;

/// `metadis::cli::run` installs and tears down the process-global log sink;
/// tests that route through it must not race each other.
static CLI_LOCK: Mutex<()> = Mutex::new(());

fn write_elf(path: &std::path::Path, seed: u64) {
    let workload = Workload::generate(&GenConfig::small(seed));
    std::fs::write(path, workload.to_elf().to_bytes()).unwrap();
}

#[test]
fn serve_answers_metrics_and_healthz_and_counts_requests() {
    let dir = std::env::temp_dir().join(format!("metadis-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let elf = dir.join("serve.elf");
    write_elf(&elf, 11);

    obs::alloc::set_enabled(true);
    let server = Server::start("127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();

    // health before any work
    assert_eq!(scrape(&addr, "/healthz").unwrap(), "ok\n");

    // two requests: one good ELF, twice
    let cfg = Config::default();
    let path = elf.to_str().unwrap();
    let a = server.process_path(path, &cfg).unwrap();
    let b = server.process_path(path, &cfg).unwrap();
    assert!(a.instructions > 0);
    assert_eq!(a.instructions, b.instructions, "same input, same result");

    // the exposition surface reflects both requests
    let metrics = scrape(&addr, "/metrics").unwrap();
    assert!(metrics.contains("metadis_requests_total 2"), "{metrics}");
    assert!(
        metrics.contains("metadis_request_errors_total 0"),
        "{metrics}"
    );
    assert!(
        metrics.contains("# TYPE metadis_requests_total counter"),
        "{metrics}"
    );
    assert!(metrics.contains("metadis_up 1"), "{metrics}");
    // instructions accumulate across requests
    let want = format!("metadis_instructions_total {}", a.instructions * 2);
    assert!(metrics.contains(&want), "missing '{want}' in {metrics}");
    // with the count-alloc feature (default) the requests allocated
    if cfg!(feature = "count-alloc") {
        assert!(
            !metrics.contains("metadis_alloc_bytes_total 0\n"),
            "{metrics}"
        );
    }

    // a bad request is counted as an error, not a crash
    assert!(server
        .process_path(dir.join("missing.elf").to_str().unwrap(), &cfg)
        .is_err());
    let metrics = scrape(&addr, "/metrics").unwrap();
    assert!(
        metrics.contains("metadis_request_errors_total 1"),
        "{metrics}"
    );
    assert!(metrics.contains("metadis_requests_total 2"), "{metrics}");

    server.shutdown();
}

#[test]
fn serve_command_drains_a_request_file() {
    let dir = std::env::temp_dir().join(format!("metadis-serve-cmd-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let elf = dir.join("batch.elf");
    write_elf(&elf, 12);
    let list = dir.join("requests.txt");
    std::fs::write(
        &list,
        format!(
            "# comment lines and blanks are skipped\n\n{}\n{}\n",
            elf.display(),
            elf.display()
        ),
    )
    .unwrap();
    let log = dir.join("serve.log");

    let _cli = CLI_LOCK.lock().unwrap();
    let args: Vec<String> = [
        "serve",
        "--from",
        list.to_str().unwrap(),
        "--log",
        log.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let out = metadis::cli::run(&args).unwrap();
    assert!(out.contains("served 2 request(s), 0 error(s)"), "{out}");
    assert!(out.contains("metadis_requests_total 2"), "{out}");

    // the log stream recorded the lifecycle as metadis.log.v1 records
    let logged = std::fs::read_to_string(&log).unwrap();
    assert!(logged.contains(r#""schema":"metadis.log.v1""#), "{logged}");
    assert!(logged.contains(r#""msg":"listening""#), "{logged}");
    assert!(logged.contains(r#""msg":"request done""#), "{logged}");
}

#[test]
fn concurrent_clients_keep_per_request_capture_isolated() {
    let dir = std::env::temp_dir().join(format!("metadis-serve-conc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut paths = Vec::new();
    for seed in 40u64..46 {
        let elf = dir.join(format!("conc-{seed}.elf"));
        write_elf(&elf, seed);
        paths.push(elf.to_str().unwrap().to_string());
    }
    let list = dir.join("requests.txt");
    std::fs::write(&list, paths.join("\n") + "\n").unwrap();
    let log = dir.join("conc.log");

    // sequential reference summaries for the same inputs
    let reference = Server::start("127.0.0.1:0").unwrap();
    let seq: Vec<_> = paths
        .iter()
        .map(|p| reference.process_path(p, &Config::default()).unwrap())
        .collect();
    reference.shutdown();

    // the serve command with a 4-wide worker pool over the same batch
    let _cli = CLI_LOCK.lock().unwrap();
    let args: Vec<String> = [
        "serve",
        "--from",
        list.to_str().unwrap(),
        "--threads",
        "4",
        "--log",
        log.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let out = metadis::cli::run(&args).unwrap();
    assert!(out.contains("served 6 request(s), 0 error(s)"), "{out}");

    // every log line stays atomic under concurrency: well-formed, one
    // record per line, no interleaving mid-record
    let logged = std::fs::read_to_string(&log).unwrap();
    for line in logged.lines() {
        assert!(
            line.starts_with(r#"{"schema":"metadis.log.v1","ts_ns":"#),
            "interleaved or malformed log line: {line}"
        );
        assert!(line.ends_with('}'), "truncated log line: {line}");
    }
    // each request surfaced exactly one begin and one done record, carrying
    // the per-request instruction count measured by *its* worker
    for (p, s) in paths.iter().zip(&seq) {
        let begin = format!(r#""msg":"request begin","fields":{{"path":"{p}""#);
        let done_needle = format!(r#""path":"{p}","instructions":{}"#, s.instructions);
        assert_eq!(logged.matches(&begin).count(), 1, "{p} begin\n{logged}");
        assert_eq!(
            logged.matches(&done_needle).count(),
            1,
            "{p} done\n{logged}"
        );
        assert!(s.instructions > 0, "{p}");
    }
}

#[test]
fn deadline_degradations_still_fire_with_worker_threads() {
    let dir = std::env::temp_dir().join(format!("metadis-serve-ddl-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let elf = dir.join("deadline.elf");
    write_elf(&elf, 13);

    // an already-expired deadline on a multi-threaded config: the shards
    // poll the deadline cooperatively, so the run degrades (instead of
    // hanging or panicking) and still classifies every byte
    let cfg = Config {
        threads: 4,
        limits: Limits {
            deadline_ms: Some(0),
            ..Limits::default()
        },
        ..Config::default()
    };
    let server = Server::start("127.0.0.1:0").unwrap();
    let s = server.process_path(elf.to_str().unwrap(), &cfg).unwrap();
    assert!(s.degradations >= 1, "{s:?}");
    assert!(s.text_bytes > 0, "{s:?}");
    let metrics = server.render_metrics();
    assert!(metrics.contains("metadis_degradations_total"), "{metrics}");
    server.shutdown();
}
