//! Integration tests for the downstream analysis surfaces: CFG, listing and
//! report, exercised through the `metadis` facade on generated workloads.

use metadis::core::{cfg::Cfg, Config, Disassembler, ListingOptions, Report};
use metadis::eval::{image_of, train_standard_model};
use metadis::gen::{GenConfig, OptProfile, Workload};

fn disassembled(seed: u64) -> (metadis::core::Image, metadis::core::Disassembly, Workload) {
    let w = Workload::generate(&GenConfig::new(seed, OptProfile::O2, 20, 0.10));
    let image = image_of(&w);
    let d = Disassembler::new(Config {
        model: Some(train_standard_model(4)),
        ..Config::default()
    })
    .disassemble(&image);
    (image, d, w)
}

#[test]
fn cfg_covers_all_accepted_instructions() {
    let (image, d, _) = disassembled(600);
    let cfg = Cfg::build(&image, &d);
    let in_blocks: usize = cfg.blocks().map(|b| b.insts.len()).sum();
    assert_eq!(in_blocks, d.inst_starts.len());
    // every block's end is start of the next instruction after its last inst
    for b in cfg.blocks() {
        let last = *b.insts.last().unwrap();
        let inst = metadis::isa::decode_at(&image.text, last as usize).unwrap();
        assert_eq!(b.end, last + inst.len as u32);
    }
}

#[test]
fn cfg_call_graph_matches_function_starts() {
    let (image, d, _) = disassembled(601);
    let cfg = Cfg::build(&image, &d);
    for (_, callee) in cfg.call_edges() {
        assert!(
            d.func_starts.contains(&callee),
            "call edge to {callee} which is not a recorded function start"
        );
    }
}

#[test]
fn listing_renders_every_region_kind() {
    let (image, d, _) = disassembled(602);
    let s = metadis::core::render_listing(&image, &d, &ListingOptions::default());
    assert!(s.contains("<fn_1>"), "function labels missing");
    assert!(s.contains("db "), "data regions missing");
    assert!(s.contains("mov"), "instructions missing");
    // every accepted instruction start address appears
    let first = d.inst_starts[0] as u64 + image.text_va;
    assert!(s.contains(&format!("{first:8x}:")), "{first:x} missing");
}

#[test]
fn report_matches_disassembly_aggregates() {
    let (image, d, w) = disassembled(603);
    let r = Report::build(&image, &d);
    assert_eq!(r.text_bytes, w.text.len());
    assert_eq!(r.instructions, d.inst_starts.len());
    assert_eq!(r.jump_tables, d.jump_tables.len());
    assert_eq!(r.functions.len(), d.func_starts.len());
    assert_eq!(r.code_bytes + r.data_bytes + r.padding_bytes, r.text_bytes);
}

#[test]
fn symbol_oracle_misses_table_cases_but_ours_does_not() {
    // The story of the paper in one test: even with perfect function
    // symbols, recursive traversal cannot reach jump-table case blocks.
    let w = Workload::generate(&GenConfig::new(604, OptProfile::O1, 30, 0.10));
    assert!(!w.truth.jump_tables.is_empty());
    let image = image_of(&w);
    let oracle = metadis::baselines::recursive::disassemble_from(&image, &w.truth.func_starts);
    let ours = Disassembler::new(Config {
        model: Some(train_standard_model(4)),
        ..Config::default()
    })
    .disassemble(&image);
    let mut oracle_missed = 0;
    let mut ours_missed = 0;
    for jt in &w.truth.jump_tables {
        for &t in &jt.targets {
            if !oracle.is_inst_start(t) {
                oracle_missed += 1;
            }
            if !ours.is_inst_start(t) {
                ours_missed += 1;
            }
        }
    }
    assert!(oracle_missed > 0, "oracle unexpectedly resolved tables");
    assert_eq!(ours_missed, 0, "ours missed {ours_missed} case blocks");
}
