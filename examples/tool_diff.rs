//! Tool disagreement analysis: diff two disassemblies of the same binary
//! and show, with listing context, exactly where and why they diverge.
//!
//! ```text
//! cargo run --release --example tool_diff
//! ```

use metadis::baselines::Baseline;
use metadis::core::diff;
use metadis::eval::{image_of, train_standard_model};
use metadis::gen::{ByteLabel, GenConfig, OptProfile, Workload};

fn main() {
    let w = Workload::generate(&GenConfig::new(8086, OptProfile::O1, 20, 0.15));
    let image = image_of(&w);
    println!(
        "binary: {} bytes, {:.1}% embedded data\n",
        w.text.len(),
        w.actual_data_density() * 100.0
    );

    let ours = metadis::core::Disassembler::new(metadis::core::Config {
        model: Some(train_standard_model(6)),
        ..metadis::core::Config::default()
    })
    .disassemble(&image);

    for baseline in [
        Baseline::LinearSweep,
        Baseline::RecursiveScan,
        Baseline::Probabilistic,
    ] {
        let other = baseline.disassemble(&image);
        let d = diff(&ours, &other);
        println!("ours vs {}:", baseline.name());
        println!("  {d}");

        // Attribute each conflict region using ground truth: who was right?
        let mut ours_right = 0usize;
        let mut other_right = 0usize;
        for r in &d.conflicts {
            let truth_code = (r.start..r.end)
                .filter(|&b| w.truth.labels[b as usize] != ByteLabel::Data)
                .count();
            let truth_data = (r.len() as usize) - truth_code;
            // a_is_code refers to side A = ours
            if r.a_is_code {
                if truth_code >= truth_data {
                    ours_right += 1;
                } else {
                    other_right += 1;
                }
            } else if truth_data >= truth_code {
                ours_right += 1;
            } else {
                other_right += 1;
            }
        }
        println!(
            "  ground truth sides with ours in {ours_right}/{} conflict regions\n",
            ours_right + other_right
        );
    }

    // Show the three largest conflict regions against linear sweep.
    let linear = Baseline::LinearSweep.disassemble(&image);
    let d = diff(&ours, &linear);
    let mut regions = d.conflicts.clone();
    regions.sort_by_key(|r| std::cmp::Reverse(r.len()));
    println!("largest disagreements vs linear-sweep:");
    for r in regions.iter().take(3) {
        let kind = if w
            .truth
            .jump_tables
            .iter()
            .any(|jt| !jt.in_rodata && jt.table_off >= r.start && jt.table_off < r.end)
        {
            "contains a jump table"
        } else {
            "embedded data blob"
        };
        println!(
            "  {:#06x}..{:#06x} ({} bytes) — ours: {}, linear: {} — {}",
            r.start,
            r.end,
            r.len(),
            if r.a_is_code { "code" } else { "data" },
            if r.a_is_code { "data" } else { "code" },
            kind
        );
    }
}
