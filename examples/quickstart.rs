//! Quickstart: generate a small stripped binary with embedded data,
//! disassemble it without any metadata, and inspect the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use metadis::core::{ByteClass, Config, Disassembler};
use metadis::eval::{image_of, metrics, train_standard_model};
use metadis::gen::{GenConfig, OptProfile, Workload};

fn main() {
    // 1. A synthetic stripped binary: 20 functions, ~12% embedded data
    //    (jump tables, literal pools, strings) inside .text.
    let workload = Workload::generate(&GenConfig::new(2024, OptProfile::O2, 20, 0.12));
    println!(
        "generated {} bytes of .text ({} instructions, {:.1}% embedded data, {} jump tables)",
        workload.text.len(),
        workload.truth.inst_starts.len(),
        workload.actual_data_density() * 100.0,
        workload.truth.jump_tables.len(),
    );

    // 2. Train the statistical model on a separate corpus (disjoint seeds).
    let model = train_standard_model(8);
    println!(
        "trained statistical model on {} instructions",
        model.trained_code_instructions()
    );

    // 3. Disassemble. The Image carries only what a stripped binary offers:
    //    bytes, section addresses, the entry point.
    let disassembler = Disassembler::new(Config {
        model: Some(model),
        ..Config::default()
    });
    let result = disassembler.disassemble(&image_of(&workload));
    println!("disassembly: {result}");

    // 4. Score against the generator's ground truth.
    let s = metrics::score(&workload, &result);
    println!(
        "instruction starts: precision {:.4}, recall {:.4}, F1 {:.4} ({} errors)",
        s.inst.precision(),
        s.inst.recall(),
        s.inst.f1(),
        s.inst.errors()
    );
    println!(
        "bytes: accuracy {:.2}%, data leaked into code {:.2}%, code lost to data {:.2}%",
        s.bytes.accuracy() * 100.0,
        s.bytes.data_leak_rate() * 100.0,
        s.bytes.code_loss_rate() * 100.0
    );
    println!(
        "classified: {} code bytes, {} data bytes, {} padding bytes",
        result.count(ByteClass::InstStart) + result.count(ByteClass::InstBody),
        result.count(ByteClass::Data),
        result.count(ByteClass::Padding)
    );
}
