//! Embedded-data audit: where exactly does each tool go wrong?
//!
//! Disassembles one workload with every tool and prints, per embedded-data
//! region of the ground truth, how many of its bytes each tool mistook for
//! code — the concrete failure the paper's abstract describes.
//!
//! ```text
//! cargo run --release --example embedded_data_audit
//! ```

use metadis::baselines::Baseline;
use metadis::eval::harness::Tool;
use metadis::eval::table::TextTable;
use metadis::eval::{image_of, train_standard_model};
use metadis::gen::{ByteLabel, GenConfig, OptProfile, Workload};

fn main() {
    let w = Workload::generate(&GenConfig::new(31337, OptProfile::O1, 25, 0.15));
    println!(
        ".text: {} bytes, {:.1}% embedded data\n",
        w.text.len(),
        w.actual_data_density() * 100.0
    );

    let tools: Vec<Tool> = vec![
        Tool::Baseline(Baseline::LinearSweep),
        Tool::Baseline(Baseline::RecursiveScan),
        Tool::Baseline(Baseline::Probabilistic),
        Tool::ours(train_standard_model(8)),
    ];
    let results: Vec<_> = tools
        .iter()
        .map(|t| (t.name(), t.run(&image_of(&w))))
        .collect();

    // enumerate contiguous ground-truth data regions
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut cur: Option<usize> = None;
    for (i, &l) in w.truth.labels.iter().enumerate() {
        match (l == ByteLabel::Data, cur) {
            (true, None) => cur = Some(i),
            (false, Some(s)) => {
                regions.push((s, i));
                cur = None;
            }
            _ => {}
        }
    }
    if let Some(s) = cur {
        regions.push((s, w.text.len()));
    }

    let mut t = TextTable::new(
        ["data region", "bytes", "kind"]
            .into_iter()
            .map(String::from)
            .chain(results.iter().map(|(n, _)| format!("{n} leaked")))
            .collect::<Vec<_>>(),
    );
    for &(s, e) in regions.iter().take(20) {
        let kind = if w
            .truth
            .jump_tables
            .iter()
            .any(|jt| (jt.table_off as usize) >= s && (jt.table_off as usize) < e)
        {
            "jump table"
        } else if w.text[s..e]
            .iter()
            .all(|&b| b == 0 || (0x20..0x7f).contains(&b))
        {
            "string-ish"
        } else {
            "blob"
        };
        let mut row = vec![
            format!("{s:#06x}..{e:#06x}"),
            (e - s).to_string(),
            kind.to_string(),
        ];
        for (_, d) in &results {
            let leaked = (s..e).filter(|&b| d.byte_class[b].is_code()).count();
            row.push(format!("{leaked}/{}", e - s));
        }
        t.row(row);
    }
    print!("{}", t.render());
    if regions.len() > 20 {
        println!("... ({} more regions)", regions.len() - 20);
    }

    println!();
    let mut summary = TextTable::new(["tool", "data bytes leaked into code", "leak rate"]);
    for (name, d) in &results {
        let mut leaked = 0usize;
        let mut total = 0usize;
        for (i, &l) in w.truth.labels.iter().enumerate() {
            if l == ByteLabel::Data {
                total += 1;
                if d.byte_class[i].is_code() {
                    leaked += 1;
                }
            }
        }
        summary.row([
            name.clone(),
            format!("{leaked}/{total}"),
            format!("{:.2}%", 100.0 * leaked as f64 / total.max(1) as f64),
        ]);
    }
    print!("{}", summary.render());
}
