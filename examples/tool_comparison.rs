//! Tool comparison: the paper's headline experiment in miniature.
//!
//! Runs the full lineup (linear sweep, recursive traversal with and without
//! prologue scanning, probabilistic, ours) over a small mixed corpus and
//! prints accuracy plus the error-reduction factor.
//!
//! ```text
//! cargo run --release --example tool_comparison
//! ```

use metadis::eval::harness::{evaluate, standard_lineup};
use metadis::eval::table::{f4, TextTable};
use metadis::eval::{train_standard_model, CorpusSpec};

fn main() {
    let mut spec = CorpusSpec::standard();
    spec.count = 6;
    let corpus = spec.generate();
    println!(
        "corpus: {} binaries / {} KiB text / {} instructions / {} jump tables\n",
        corpus.workloads.len(),
        corpus.total_text_bytes() / 1024,
        corpus.total_instructions(),
        corpus.total_jump_tables()
    );

    let model = train_standard_model(8);
    let mut t = TextTable::new([
        "tool",
        "inst P",
        "inst R",
        "inst F1",
        "errors",
        "func F1",
        "ms/binary",
    ]);
    let mut ours_errors = None;
    let mut best_baseline = usize::MAX;
    for tool in standard_lineup(model) {
        let r = evaluate(&tool, &corpus);
        let m = r.score.inst;
        t.row([
            r.tool.clone(),
            f4(m.precision()),
            f4(m.recall()),
            f4(m.f1()),
            m.errors().to_string(),
            f4(r.score.funcs.f1()),
            format!(
                "{:.2}",
                r.elapsed.as_secs_f64() * 1000.0 / corpus.workloads.len() as f64
            ),
        ]);
        if r.tool.contains("ours") {
            ours_errors = Some(m.errors());
        } else if !r.tool.contains("symbol-assisted") {
            best_baseline = best_baseline.min(m.errors());
        }
    }
    print!("{}", t.render());

    match ours_errors {
        Some(0) => println!("\nours: zero instruction errors (best baseline: {best_baseline})"),
        Some(e) => println!(
            "\nerror reduction vs best baseline: {:.1}x ({} -> {})",
            best_baseline as f64 / e as f64,
            best_baseline,
            e
        ),
        None => {}
    }
}
