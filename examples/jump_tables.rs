//! Jump-table recovery walkthrough: build a real switch with the assembler,
//! package it as an ELF executable, read the ELF back, and watch the
//! pipeline find the table, its extent and its case labels.
//!
//! ```text
//! cargo run --example jump_tables
//! ```

use metadis::core::{Config, Disassembler, Image};
use metadis::elf::{Elf, Section};
use metadis::isa::{Asm, Cond, Gp, Mem, OpSize};

fn main() {
    // A hand-written function with a 5-way switch dispatched through a
    // PIC jump table embedded right in the instruction stream.
    let mut a = Asm::new();
    let l_table = a.label();
    let l_default = a.label();
    let l_end = a.label();
    let cases: Vec<_> = (0..5).map(|_| a.label()).collect();

    a.cmp_ri(OpSize::Q, Gp::RDI, 4);
    a.jcc_label(Cond::A, l_default);
    a.lea_rip_label(Gp::RAX, l_table);
    a.movsxd_load(Gp::RCX, Mem::base_index(Gp::RAX, Gp::RDI, 4, 0));
    a.add_rr(OpSize::Q, Gp::RCX, Gp::RAX);
    a.jmp_ind(Gp::RCX);
    a.bind(l_table);
    let table_off = a.len();
    for &c in &cases {
        a.dd_label_diff(c, l_table);
    }
    let mut case_offs = Vec::new();
    for (i, &c) in cases.iter().enumerate() {
        a.bind(c);
        case_offs.push(a.len());
        a.mov_ri32(Gp::RAX, (i * 100) as i32);
        a.jmp_label(l_end);
    }
    a.bind(l_default);
    a.mov_ri32(Gp::RAX, -1);
    a.bind(l_end);
    a.ret();
    let text = a.finish().expect("assembles");

    // Package as a stripped ELF and read it back, as a real consumer would.
    let va = 0x401000u64;
    let mut elf = Elf::new(va);
    elf.push_section(Section::progbits(".text", va, text, true));
    let bytes = elf.to_bytes();
    println!("ELF executable: {} bytes on disk", bytes.len());
    let parsed = Elf::parse(&bytes).expect("parses");
    let image = Image::from_elf(&parsed).expect("has text");
    println!(
        ".text at {:#x}, {} bytes, entry offset {}\n",
        image.text_va,
        image.text.len(),
        image.entry.unwrap()
    );

    let d = Disassembler::new(Config::default()).disassemble(&image);
    println!("pipeline found {} jump table(s)", d.jump_tables.len());
    for t in &d.jump_tables {
        println!(
            "  table at offset {:#x}: {} entries x {} bytes (dispatch: lea at {:#x}, jmp at {:#x})",
            t.table_off,
            t.entries(),
            t.entry_size,
            t.lea_off,
            t.jmp_off
        );
        println!("  case targets: {:?}", t.targets);
    }

    assert_eq!(d.jump_tables.len(), 1, "the switch's table must be found");
    let t = &d.jump_tables[0];
    assert_eq!(t.table_off as usize, table_off);
    assert_eq!(
        t.targets,
        case_offs.iter().map(|&o| o as u32).collect::<Vec<_>>()
    );
    println!(
        "\ntable extent and all {} case labels recovered exactly",
        t.entries()
    );

    // The table bytes are data; every case label is an instruction start.
    let all_table_bytes_data = (table_off..table_off + 20).all(|b| d.byte_class[b].is_data());
    println!("table bytes classified as data: {all_table_bytes_data}");
    let all_cases_code = case_offs.iter().all(|&c| d.is_inst_start(c as u32));
    println!("case labels classified as instruction starts: {all_cases_code}");
}
